"""Wall-clock soak of the sharded serving tier vs a single process.

Drives open-loop arrivals (wrk2-style: request *i* is due at
``start + i/rate``, latency measured from the intended arrival) through
a process-mode :class:`~repro.serving_shard.ShardRouter` at several
shard counts and reports goodput, open-loop p99, shed counts and the
per-shard breakdown.  A separate segment kills a shard mid-soak and
reports the respawn + recovery tail.

Service time is modeled: every worker wraps its engine in a
:class:`~repro.serving_shard.SleepLatencyService` (seeded lognormal
*sleep* around the real forward), because real serving cost is
dominated by I/O-shaped time that overlaps across processes — which is
exactly the concurrency win this tier exists for.  On a small CI host
the tiny model's CPU-bound forward alone would never scale across
processes, so ``--real`` (no sleep shim) reports numbers without
asserting speedup.  ``max_batch_size`` is pinned to 1: per-request
I/O does not amortise under batching, and batch amortisation is
``bench_batching.py``'s subject, not this bench's.

Gates (modeled mode): the 2-shard soak must beat the single-process
goodput by >= {MIN_SPEEDUP}x, stay shed-free and hold the {SLO_P99_MS:.0f} ms
open-loop p99 SLO; the kill segment must respawn the victim and
resolve every submitted request (nothing dropped).
"""

from __future__ import annotations

import argparse
import pathlib
import threading
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.data import GeneratorConfig, SyntheticWorld
from repro.load.scenarios import small_model
from repro.load.stream import RequestStream, build_instance_pool
from repro.serving_shard import ShardConfig, ShardRouter

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"

#: Modeled per-request service sleep (lognormal around this base).
BASE_MS = 25.0
#: Open-loop arrival rate for the modeled soak.  Single-process
#: capacity is ~1000/(BASE_MS + forward) ~ 35 rps, so this overloads
#: one process while the hot shard of two stays comfortably below 1.0
#: utilisation (consistent hashing splits the 14-courier pool 8/6).
RATE_RPS = 45.0
SLO_P99_MS = 250.0
MIN_SPEEDUP = 1.15
NUM_COURIERS = 14
POOL_SIZE = 28


def build_requests(seed: int = 0) -> List:
    """A deterministic, courier-balanced request pool."""
    world = SyntheticWorld(GeneratorConfig(
        num_aois=40, num_couriers=NUM_COURIERS, num_days=2,
        instances_per_courier_day=2, seed=seed))
    pool = build_instance_pool(world, POOL_SIZE, seed=seed + 1)
    stream = RequestStream(pool, seed=seed + 2)
    return [stream.next() for _ in range(POOL_SIZE)]


def drive(router: ShardRouter, requests: List, rate: float,
          duration_s: float, kill_at: Optional[int] = None,
          kill_victim: int = 0) -> Dict[str, object]:
    """Open-loop soak: submit on schedule, resolve concurrently.

    A waiter thread resolves tickets FIFO while the arrival loop keeps
    submitting — that is what triggers the router's lazy respawn while
    load is still arriving in the kill segment.  Latency is taken from
    ``ticket.done_at`` (stamped by the collector), so waiter position
    never distorts the measurement.
    """
    total = int(rate * duration_s)
    tickets: List[Tuple[float, object]] = []
    submitting = threading.Event()

    def waiter() -> None:
        index = 0
        while True:
            if index < len(tickets):
                router.wait_all([tickets[index][1]])
                index += 1
            elif submitting.is_set():
                break
            else:
                time.sleep(0.002)

    thread = threading.Thread(target=waiter, daemon=True)
    thread.start()
    start = time.perf_counter()
    for i in range(total):
        scheduled = start + i / rate
        delay = scheduled - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        if kill_at is not None and i == kill_at:
            router.kill_shard(kill_victim)
        tickets.append((scheduled, router.submit(requests[i % len(requests)])))
    submitting.set()
    thread.join(timeout=120.0)

    latencies: List[float] = []
    tail: List[float] = []
    shed = 0
    unresolved = 0
    last_done = start
    tail_from = total * 3 // 4
    for i, (scheduled, ticket) in enumerate(tickets):
        if not ticket.done or ticket.done_at is None:
            unresolved += 1
            continue
        last_done = max(last_done, ticket.done_at)
        response = ticket.response
        if getattr(response, "degraded_reason", "") == "shed":
            shed += 1
            continue
        latency_ms = (ticket.done_at - scheduled) * 1000.0
        latencies.append(latency_ms)
        if i >= tail_from:
            tail.append(latency_ms)
    elapsed = max(last_done - start, 1e-9)
    arr = np.asarray(latencies, dtype=float)
    return {
        "total": total,
        "completed": len(latencies),
        "shed": shed,
        "unresolved": unresolved,
        "goodput_rps": len(latencies) / elapsed,
        "p50_ms": float(np.percentile(arr, 50)) if len(arr) else float("nan"),
        "p99_ms": float(np.percentile(arr, 99)) if len(arr) else float("nan"),
        "tail_p99_ms": (float(np.percentile(tail, 99))
                        if tail else float("nan")),
        "shards": router.shard_stats(),
    }


def run_soak(requests: List, num_shards: int, duration_s: float,
             sleep_ms: float = BASE_MS, rate: float = RATE_RPS,
             kill: bool = False) -> Dict[str, object]:
    model = small_model(seed=7, hidden_dim=16)
    router = ShardRouter(model, version="v001", config=ShardConfig(
        num_shards=num_shards, max_batch_size=1,
        sleep_latency_ms=sleep_ms))
    try:
        kill_at = None
        victim = 0
        if kill:
            kill_at = int(rate * duration_s * 2) // 5
            counts = [0] * num_shards
            for request in requests:
                counts[router.place(request)] += 1
            victim = int(np.argmax(counts))   # hit the hot shard
        result = drive(router, requests, rate, duration_s,
                       kill_at=kill_at, kill_victim=victim)
        result["victim"] = victim
        return result
    finally:
        router.shutdown()


def shard_table(shards: List[Dict[str, object]]) -> List[str]:
    lines = [f"      {'shard':>5s} {'req':>5s} {'shed':>5s} "
             f"{'respawn':>7s} {'peak':>5s} {'p99ms':>8s}"]
    for s in shards:
        lines.append(
            f"      {s['shard']:>5d} {s['requests']:>5d} {s['shed']:>5d} "
            f"{s['respawns']:>7d} {s['queue_peak']:>5d} "
            f"{s['p99_ms']:>8.1f}")
    return lines


def run(smoke: bool = False, real: bool = False) -> str:
    duration = 4.0 if smoke else 10.0
    shard_counts = [1, 2] if smoke else [1, 2, 4]
    requests = build_requests()
    lines = [
        "Sharded serving soak" + (" (smoke)" if smoke else ""),
        f"  open-loop {RATE_RPS:.0f} rps for {duration:.0f} s per run, "
        f"modeled service {BASE_MS:.0f} ms "
        f"(lognormal sleep per request), max_batch_size=1",
        "",
        f"  {'shards':>6s} {'total':>6s} {'good':>6s} {'shed':>5s} "
        f"{'goodput':>8s} {'p50ms':>7s} {'p99ms':>8s} {'slo':>5s}",
    ]
    goodput: Dict[int, float] = {}
    results: Dict[int, Dict[str, object]] = {}
    for n in shard_counts:
        result = run_soak(requests, n, duration)
        results[n] = result
        goodput[n] = result["goodput_rps"]
        slo_ok = result["shed"] == 0 and result["p99_ms"] <= SLO_P99_MS
        lines.append(
            f"  {n:>6d} {result['total']:>6d} {result['completed']:>6d} "
            f"{result['shed']:>5d} {result['goodput_rps']:>7.1f}r "
            f"{result['p50_ms']:>7.1f} {result['p99_ms']:>8.1f} "
            f"{'PASS' if slo_ok else 'FAIL':>5s}")
        assert result["unresolved"] == 0, (
            f"{n} shards: {result['unresolved']} tickets never resolved")

    speedup = goodput[2] / goodput[1]
    two = results[2]
    lines += ["", f"  2-shard speedup over single process: {speedup:.2f}x "
              f"(gate: >= {MIN_SPEEDUP:.2f}x)"]
    lines += ["", "    per-shard breakdown (2-shard soak):"]
    lines += shard_table(two["shards"])
    assert speedup >= MIN_SPEEDUP, (
        f"2 shards must beat one process: {speedup:.2f}x < {MIN_SPEEDUP}x "
        f"({goodput[2]:.1f} vs {goodput[1]:.1f} rps)")
    assert two["shed"] == 0, (
        f"2-shard soak must be shed-free, shed {two['shed']}")
    assert two["p99_ms"] <= SLO_P99_MS, (
        f"2-shard open-loop p99 {two['p99_ms']:.1f}ms over the "
        f"{SLO_P99_MS:.0f}ms SLO")

    kill_result = run_soak(requests, 2, duration, kill=True)
    respawns = sum(s["respawns"] for s in kill_result["shards"])
    lines += [
        "",
        f"  kill segment: shard {kill_result['victim']} terminated at 40% "
        f"of arrivals",
        f"    completed {kill_result['completed']}/{kill_result['total']} "
        f"(shed {kill_result['shed']}), respawns {respawns}, "
        f"recovery-tail p99 {kill_result['tail_p99_ms']:.1f} ms",
    ]
    lines += shard_table(kill_result["shards"])
    assert respawns >= 1, "the killed shard must be respawned"
    assert kill_result["unresolved"] == 0, (
        "every request submitted across the kill must resolve")
    assert (kill_result["completed"] + kill_result["shed"]
            == kill_result["total"]), "kill segment dropped requests"

    if real:
        lines += ["", "  --real (no sleep shim; CPU-bound forward, "
                  "no speedup asserted):"]
        for n in ([1, 2] if smoke else [1, 2, 4]):
            result = run_soak(requests, n, duration_s=min(duration, 4.0),
                              sleep_ms=0.0, rate=30.0)
            lines.append(
                f"    {n} shard(s): goodput {result['goodput_rps']:.1f} rps, "
                f"p99 {result['p99_ms']:.1f} ms, shed {result['shed']}")

    lines += ["", "  (goodput = non-shed completions / time-to-last-answer; "
              "latency is open-loop,", "   measured from each request's "
              "intended arrival instant)"]
    return "\n".join(lines)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="short CI-sized soak (4 s runs, 1-2 shards)")
    parser.add_argument("--real", action="store_true",
                        help="also run the real forward with no sleep shim "
                             "(reported, not gated)")
    args = parser.parse_args()
    report = run(smoke=args.smoke, real=args.real)
    RESULTS_DIR.mkdir(exist_ok=True)
    suffix = "_smoke" if args.smoke else ""
    out = RESULTS_DIR / f"shard_serving{suffix}.txt"
    out.write_text(report + "\n")
    print(report)
    print(f"\nwrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
