"""Constant-rate load scenarios through the resilience stack.

Runs every scenario in the :mod:`repro.load` library with the
open-loop driver (arrivals scheduled by clock, never throttled by
response latency) and reports per-phase p50/p95/p99 latency, degraded
fraction, shed counts and the SLO verdict.  Each run also writes its
machine-readable JSON artifact to ``benchmarks/results/`` and
validates it against the checked-in schema plus the live metrics
registry.

``--smoke`` uses the deterministic virtual clock with 1-second phases
(CI-sized, bit-reproducible); the default is a wall-clock run with the
standard 5-second phases.  Outcome assertions (surge sheds and
recovers, the fault storm trips the breaker, checkpoint corruption is
refused, the faulty canary rolls back, the silent quality drift raises
an alarm and rolls back, storm weather builds queueing, the continual
drift retrains and canary-promotes a student, and every serving SLO
stays green) hold in both modes.
"""

from __future__ import annotations

import argparse
import pathlib

from repro.load import (LoadRunConfig, SCENARIOS, ScenarioResult,
                        reconcile_shards, reconcile_with_registry,
                        run_scenario, validate_artifact, write_artifact)

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"


def check_outcomes(result: ScenarioResult) -> None:
    """Scenario-specific invariants the resilience layer must uphold."""
    artifact = result.artifact
    totals = artifact["totals"]
    phases = {p["name"]: p for p in artifact["phases"]}
    name = result.scenario
    assert totals["invalid_responses"] == 0, (
        f"{name}: every response must be a valid route+ETA")
    if name == "steady":
        assert result.passed, "steady state must meet the SLO"
        assert totals["degraded"] == 0
    elif name == "surge":
        assert phases["surge"]["degraded"]["by_reason"].get("shed", 0) > 0, (
            "overload must trigger admission-control shedding")
        assert phases["recovery"]["degraded"]["total"] == 0, (
            "recovery after the surge must be clean")
    elif name == "fault_storm":
        assert phases["storm"]["breaker_opens"] > 0, (
            "the error burst must trip the circuit breaker")
        assert phases["storm"]["degraded"]["total"] > 0
    elif name == "checkpoint_corruption":
        events = {e["event"] for e in artifact["events"]}
        assert "checkpoint_corruption_rejected" in events, (
            "the registry must refuse to load the corrupt checkpoint")
        assert totals["degraded"] == 0, (
            "disk corruption must not affect in-memory serving")
    elif name == "canary_surge":
        actions = {d["action"] for d in artifact["decisions"]}
        assert "rollback" in actions, (
            "the faulty candidate must be rolled back")
    elif name == "quality_drift":
        quality = artifact["quality"]
        assert quality["verdict"] == "drift", (
            "the label shift must raise a drift alarm")
        assert quality["alarms"], "at least one DriftAlarm must fire"
        drift_rollbacks = [d for d in artifact["decisions"]
                           if d["action"] == "rollback"
                           and d["reason"].startswith("drift:")]
        assert drift_rollbacks, (
            "the controller must roll the canary back on the drift "
            "alarm, and the reason must say so")
        assert totals["degraded"] == 0 and artifact["slo"]["passed"], (
            "the label shift must be invisible to serving metrics — "
            "only the quality stream may notice")
    elif name == "shard_soak":
        assert phases["diurnal"]["degraded"]["by_reason"].get(
            "shed", 0) > 0, (
            "the diurnal peak must push admission control into shedding")
        assert phases["steady"]["degraded"]["total"] == 0, (
            "the steady tail after the diurnal cycle must be clean")
        assert result.passed, "shard_soak must end SLO-green"
        shards = artifact["shards"]
        assert len(shards) >= 2, "the soak must actually run >= 2 shards"
        assert sum(s["shed"] for s in shards) == totals["shed"], (
            "per-shard shed counts must reconcile with the run total")
    elif name == "shard_kill":
        events = [e["event"] for e in artifact["events"]]
        assert "shard_killed" in events and "shard_respawned" in events, (
            "the kill must be recorded and the router must respawn")
        assert sum(s["respawns"] for s in artifact["shards"]) >= 1
        assert result.passed and totals["degraded"] == 0, (
            "losing one shard of N must not break the SLO")
    elif name == "weather_slowdown":
        if artifact["mode"] == "virtual":
            assert (phases["storm"]["service_ms"]["p99"]
                    > phases["clear"]["service_ms"]["p99"]), (
                "storm weather must inflate the modeled service time")
            assert (phases["storm"]["latency_ms"]["p99"]
                    > 2.0 * phases["clear"]["latency_ms"]["p99"]), (
                "the weather-coupled slowdown must build visible queueing")
        assert phases["clearing"]["degraded"]["total"] == 0, (
            "light weather after the storm must serve cleanly")
    elif name == "continual_drift":
        events = [e["event"] for e in artifact["events"]]
        for needed in ("label_shift", "drift_alarm",
                       "online_retrain_started",
                       "online_candidate_registered",
                       "online_canary_started"):
            assert needed in events, (
                f"continual_drift: missing {needed!r} in the event log")
        assert events.index("drift_alarm") < events.index(
            "online_retrain_started") < events.index(
            "online_candidate_registered") < events.index(
            "online_canary_started"), (
            "the loop must run alarm -> retrain -> register -> canary")
        if artifact["mode"] == "virtual":
            actions = [d["action"] for d in artifact["decisions"]]
            assert actions == ["promote"], (
                "the gated student must canary-promote exactly once")
            by_version = artifact["quality"]["segments"]["model_version"]
            parent, student = sorted(by_version)[:2]
            assert (by_version[student]["eta_mae"]
                    < 0.5 * by_version[parent]["eta_mae"]), (
                "the promoted student must at least halve the parent's "
                "windowed ETA MAE on the shifted stream")
    elif name == "regime_cycle":
        events = [e["event"] for e in artifact["events"]]
        for needed in ("label_shift", "drift_alarm",
                       "online_retrain_started", "regime_revert",
                       "online_zoo_reactivated"):
            assert needed in events, (
                f"regime_cycle: missing {needed!r} in the event log")
        assert events.index("regime_revert") < events.index(
            "online_zoo_reactivated"), (
            "the zoo swap must react to the regime reverting")
        assert events.count("online_retrain_started") == 1, (
            "the returning regime must reactivate the zoo entry, "
            "not trigger a second retrain")
        assert events.count("online_zoo_reactivated") == 1
        if artifact["mode"] == "virtual":
            actions = [d["action"] for d in artifact["decisions"]]
            assert actions == ["promote"], (
                "the storm student must canary-promote exactly once")


def run(smoke: bool = False, seed: int = 0) -> str:
    config = LoadRunConfig(
        phase_duration_s=1.0 if smoke else 5.0,
        virtual=smoke, seed=seed)
    suffix = "_smoke" if smoke else ""
    RESULTS_DIR.mkdir(exist_ok=True)

    lines = [
        "Load scenario benchmark" + (" (smoke)" if smoke else ""),
        f"  clock {config.mode}, base rate {config.rate:.0f} rps, "
        f"phase {config.phase_duration_s:.0f} s, seed {config.seed}",
        "",
        f"  {'scenario':22s} {'req':>5s} {'p99ms':>8s} {'degr%':>7s} "
        f"{'shed':>5s} {'opens':>5s} {'slo':>5s}",
    ]
    for name in sorted(SCENARIOS):
        result = run_scenario(name, config)
        artifact = result.artifact
        validate_artifact(artifact)
        reconcile_with_registry(artifact, result.context.metrics)
        if "shards" in artifact:
            reconcile_shards(artifact, result.context.metrics)
        check_outcomes(result)
        write_artifact(artifact, RESULTS_DIR / f"load_{name}{suffix}.json")
        totals = artifact["totals"]
        slo = artifact["slo"]
        lines.append(
            f"  {name:22s} {totals['requests']:>5d} "
            f"{slo['p99_ms']:>8.1f} "
            f"{100.0 * totals['degraded_fraction']:>6.1f}% "
            f"{totals['shed']:>5d} {totals['breaker_opens']:>5d} "
            f"{'PASS' if slo['passed'] else 'FAIL':>5s}")
    lines += [
        "",
        "  (p99 and the verdict cover SLO-gated phases only; overload",
        "   phases are recorded in the per-scenario JSON artifacts)",
    ]
    return "\n".join(lines)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="deterministic virtual-clock CI run")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    report = run(smoke=args.smoke, seed=args.seed)
    suffix = "_smoke" if args.smoke else ""
    out = RESULTS_DIR / f"load_scenarios{suffix}.txt"
    out.write_text(report + "\n")
    print(report)
    print(f"\nwrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
