"""Table IV — time prediction (RMSE / MAE / acc@20) for all 8 methods.

Expected shape: methods with separately trained plug-in time heads (and
the fixed-speed heuristics) trail the jointly trained M²G4RTP, which
posts the best RMSE/MAE/acc@20 overall.
"""

import pytest

from repro.eval import evaluate_method, format_table

from common import all_predictors, get_context, write_result

BUCKETS = ("(3-10]", "(10-20]", "all")


@pytest.fixture(scope="module")
def evaluations():
    context = get_context()
    predictors = all_predictors()
    return [
        evaluate_method(name, predict, context.test, buckets=BUCKETS)
        for name, predict in predictors.items()
    ]


def test_table4_time_prediction(evaluations, benchmark):
    table = format_table(evaluations, "time", buckets=BUCKETS)
    write_result("table4_time.txt", table)
    benchmark(format_table, evaluations, "time")

    by_name = {evaluation.name: evaluation for evaluation in evaluations}
    ours = by_name["M2G4RTP"].buckets["all"]
    # Shape check 1: best MAE among all methods.
    for name, evaluation in by_name.items():
        if name == "M2G4RTP":
            continue
        assert ours.mae <= evaluation.buckets["all"].mae + 1e-9, (
            f"M2G4RTP MAE {ours.mae:.2f} above {name} "
            f"{evaluation.buckets['all'].mae:.2f}")
    # Shape check 2: clearly better than the fixed-speed heuristics.
    assert ours.rmse < by_name["Time-Greedy"].buckets["all"].rmse
    assert ours.acc_at_20 > by_name["OR-Tools"].buckets["all"].acc_at_20


def test_bench_m2g4rtp_joint_inference(benchmark):
    context = get_context()
    predict = all_predictors()["M2G4RTP"]
    instance = context.test[0]
    benchmark(predict, instance)
