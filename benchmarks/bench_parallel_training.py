"""Sequential-vs-parallel training step time and scaling for M²G4RTP.

Trains the same model on the same data through the sequential
``Trainer`` and the ``DataParallelTrainer`` at 1, 2 and 4 gradient
workers, reporting per-epoch wall time, mean optimisation-step time,
speedup over sequential and scaling efficiency (speedup / workers) —
plus the final-epoch loss of every run so parity is visible in the same
table.

Speedup is bounded by the physical core count: the report records the
cores the scheduler actually grants (``os.process_cpu_count``), and on
a single-core box every configuration necessarily lands near 1.0x —
the numbers that matter come from a multi-core runner (CI uses one).

Run ``python benchmarks/bench_parallel_training.py`` for the full
measurement or ``--smoke`` for a CI-sized run.  Results land in
``benchmarks/results/parallel_training.txt`` (``_smoke`` suffix in
smoke mode).
"""

from __future__ import annotations

import argparse
import os
import pathlib
import time
from typing import List, Optional

import numpy as np

from repro.core import M2G4RTP, M2G4RTPConfig
from repro.data import GeneratorConfig, RTPDataset, SyntheticWorld
from repro.parallel import DataParallelTrainer, ParallelConfig
from repro.training import Trainer, TrainerConfig

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"


def build_dataset(num_instances: int, seed: int = 2023) -> RTPDataset:
    config = GeneratorConfig(num_aois=60, num_couriers=6, num_days=10,
                             instances_per_courier_day=3, seed=seed)
    dataset = RTPDataset(SyntheticWorld(config).generate())
    return dataset.filter_paper_scope()[:num_instances]


def make_model(hidden_dim: int, num_heads: int,
               num_encoder_layers: int) -> M2G4RTP:
    return M2G4RTP(M2G4RTPConfig(
        hidden_dim=hidden_dim, num_heads=num_heads,
        num_encoder_layers=num_encoder_layers, seed=11))


def _granted_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def run_once(train: RTPDataset, trainer_config: TrainerConfig,
             model_kwargs: dict, workers: int,
             prefetch: int) -> dict:
    """Train once; return seconds, per-step time and final loss."""
    model = make_model(**model_kwargs)
    if workers == 0:
        trainer = Trainer(model, trainer_config)
    else:
        trainer = DataParallelTrainer(
            model, trainer_config,
            ParallelConfig(num_workers=workers, prefetch=prefetch))
    start = time.perf_counter()
    history = trainer.fit(train)
    seconds = time.perf_counter() - start
    steps = trainer_config.epochs * (
        (len(train) + trainer_config.batch_size - 1)
        // trainer_config.batch_size)
    return {
        "workers": workers,
        "seconds": seconds,
        "step_ms": seconds / steps * 1000.0,
        "final_loss": history.train_loss[-1],
    }


def run(num_instances: int = 48, epochs: int = 3, batch_size: int = 8,
        hidden_dim: int = 32, num_heads: int = 4,
        num_encoder_layers: int = 2, prefetch: int = 4,
        worker_counts: Optional[List[int]] = None,
        smoke: bool = False) -> str:
    """Execute the benchmark; returns the rendered report."""
    if smoke:
        num_instances = min(num_instances, 16)
        epochs = min(epochs, 2)
        batch_size = min(batch_size, 4)
        hidden_dim = 16
        num_heads = 2
        num_encoder_layers = 1
    worker_counts = worker_counts or [1, 2, 4]
    model_kwargs = dict(hidden_dim=hidden_dim, num_heads=num_heads,
                        num_encoder_layers=num_encoder_layers)
    trainer_config = TrainerConfig(epochs=epochs, batch_size=batch_size,
                                   patience=epochs + 1)

    train = build_dataset(num_instances)
    # Warm-up (BLAS threads, allocator) outside the timed region.
    run_once(train[:batch_size],
             TrainerConfig(epochs=1, batch_size=batch_size,
                           patience=2),
             model_kwargs, workers=0, prefetch=prefetch)

    baseline = run_once(train, trainer_config, model_kwargs,
                        workers=0, prefetch=prefetch)
    rows = [baseline]
    for workers in worker_counts:
        rows.append(run_once(train, trainer_config, model_kwargs,
                             workers=workers, prefetch=prefetch))

    parity = all(
        np.isclose(row["final_loss"], baseline["final_loss"],
                   rtol=1e-6, atol=1e-8) for row in rows[1:])

    cores = _granted_cores()
    lines = [
        "Parallel training — sequential vs data-parallel workers",
        f"mode={'smoke' if smoke else 'full'}  instances={num_instances}  "
        f"epochs={epochs}  batch_size={batch_size}  "
        f"hidden_dim={hidden_dim}  prefetch={prefetch}",
        f"cpu cores granted: {cores}"
        + ("  (single core: speedups are bounded near 1.0x here; "
           "see a multi-core runner for scaling)" if cores == 1 else ""),
        "",
        f"{'config':<14}{'total s':>10}{'step ms':>10}"
        f"{'speedup':>10}{'efficiency':>12}{'final loss':>14}",
    ]
    for row in rows:
        label = ("sequential" if row["workers"] == 0
                 else f"{row['workers']} worker"
                 + ("s" if row["workers"] > 1 else ""))
        speedup = baseline["seconds"] / row["seconds"]
        efficiency = speedup / max(row["workers"], 1)
        lines.append(
            f"{label:<14}{row['seconds']:>10.2f}{row['step_ms']:>10.1f}"
            f"{speedup:>9.2f}x{efficiency:>11.0%}"
            f"{row['final_loss']:>14.6f}")
    lines += [
        "",
        f"loss parity vs sequential (rtol 1e-6): "
        f"{'OK' if parity else 'FAILED'}",
    ]
    report = "\n".join(lines)

    RESULTS_DIR.mkdir(exist_ok=True)
    filename = ("parallel_training_smoke.txt" if smoke
                else "parallel_training.txt")
    (RESULTS_DIR / filename).write_text(report + "\n")
    return report


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run")
    parser.add_argument("--instances", type=int, default=48)
    parser.add_argument("--epochs", type=int, default=3)
    parser.add_argument("--batch-size", type=int, default=8)
    parser.add_argument("--prefetch", type=int, default=4)
    parser.add_argument("--workers", type=int, nargs="+",
                        default=[1, 2, 4],
                        help="worker counts to sweep (besides sequential)")
    args = parser.parse_args()
    if args.instances < 1:
        parser.error("--instances must be >= 1")
    if args.epochs < 1:
        parser.error("--epochs must be >= 1")
    if args.batch_size < 1:
        parser.error("--batch-size must be >= 1")
    if any(workers < 1 for workers in args.workers):
        parser.error("--workers entries must be >= 1")
    report = run(num_instances=args.instances, epochs=args.epochs,
                 batch_size=args.batch_size, prefetch=args.prefetch,
                 worker_counts=args.workers, smoke=args.smoke)
    print(report)
    return 0 if "FAILED" not in report else 1


if __name__ == "__main__":
    raise SystemExit(main())
