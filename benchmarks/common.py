"""Shared experiment context for the benchmark suite.

All benches operate on one synthetic world and one set of trained
models, built lazily and cached per profile.  The profile is selected
with the ``REPRO_BENCH_PROFILE`` environment variable:

* ``quick`` (default) — laptop-scale: ~200 instances, short training.
  Finishes the whole suite in a few minutes.
* ``full`` — larger data and longer training; closer to convergence and
  to the paper's relative gaps.

Every bench writes its rendered table to ``benchmarks/results/`` so the
paper-shaped output survives pytest's output capture.
"""

from __future__ import annotations

import dataclasses
import functools
import os
import pathlib
from typing import Dict, List

from repro.baselines import (
    DeepBaselineConfig,
    DeepRoute,
    DistanceGreedy,
    FDNET,
    Graph2Route,
    OSquare,
    ShortestRouteTSP,
    TimeGreedy,
)
from repro.core import M2G4RTP, M2G4RTPConfig, make_variant
from repro.data import GeneratorConfig, RTPDataset, SyntheticWorld
from repro.eval import baseline_predictor, model_predictor
from repro.training import Trainer, TrainerConfig

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Canonical method order of Tables III-V.
METHOD_ORDER = [
    "Distance-Greedy", "Time-Greedy", "OR-Tools", "OSquare",
    "DeepRoute", "FDNET", "Graph2Route", "M2G4RTP",
]


@dataclasses.dataclass
class Profile:
    generator: GeneratorConfig
    deep_epochs: int
    deep_time_epochs: int
    m2g_epochs: int
    ablation_epochs: int
    osquare_estimators: int


PROFILES: Dict[str, Profile] = {
    "quick": Profile(
        generator=GeneratorConfig(num_aois=60, num_couriers=6, num_days=10,
                                  instances_per_courier_day=3, seed=2023),
        deep_epochs=8, deep_time_epochs=5, m2g_epochs=16,
        ablation_epochs=10, osquare_estimators=25,
    ),
    "full": Profile(
        generator=GeneratorConfig(num_aois=120, num_couriers=12, num_days=20,
                                  instances_per_courier_day=3, seed=2023),
        deep_epochs=14, deep_time_epochs=8, m2g_epochs=24,
        ablation_epochs=16, osquare_estimators=40,
    ),
}


def profile_name() -> str:
    name = os.environ.get("REPRO_BENCH_PROFILE", "quick")
    if name not in PROFILES:
        raise KeyError(f"unknown REPRO_BENCH_PROFILE {name!r}; "
                       f"options: {sorted(PROFILES)}")
    return name


@dataclasses.dataclass
class ExperimentContext:
    profile: Profile
    world: SyntheticWorld
    dataset: RTPDataset
    train: RTPDataset
    validation: RTPDataset
    test: RTPDataset


@functools.lru_cache(maxsize=2)
def get_context(name: str = None) -> ExperimentContext:
    name = name or profile_name()
    profile = PROFILES[name]
    world = SyntheticWorld(profile.generator)
    dataset = RTPDataset(world.generate()).filter_paper_scope()
    train, validation, test = dataset.split_by_day()
    return ExperimentContext(
        profile=profile, world=world, dataset=dataset,
        train=train, validation=validation, test=test,
    )


@functools.lru_cache(maxsize=2)
def get_baselines(name: str = None):
    """Fit every baseline of Section V-B; returns name -> fitted model."""
    name = name or profile_name()
    context = get_context(name)
    profile = context.profile
    deep_config = DeepBaselineConfig(
        epochs=profile.deep_epochs, time_epochs=profile.deep_time_epochs)
    baselines = {
        "Distance-Greedy": DistanceGreedy(),
        "Time-Greedy": TimeGreedy(),
        "OR-Tools": ShortestRouteTSP(),
        "OSquare": OSquare(n_estimators=profile.osquare_estimators),
        "DeepRoute": DeepRoute(deep_config),
        "FDNET": FDNET(deep_config),
        "Graph2Route": Graph2Route(deep_config),
    }
    for model in baselines.values():
        model.fit(context.train, context.validation)
    return baselines


@functools.lru_cache(maxsize=2)
def get_m2g4rtp(name: str = None) -> M2G4RTP:
    """Train the full M²G4RTP model for the shared context."""
    name = name or profile_name()
    context = get_context(name)
    model = M2G4RTP(M2G4RTPConfig(seed=11))
    trainer_config = TrainerConfig(epochs=context.profile.m2g_epochs,
                                   patience=6)
    Trainer(model, trainer_config).fit(context.train, context.validation)
    return model


@functools.lru_cache(maxsize=8)
def get_variant(variant: str, name: str = None) -> M2G4RTP:
    """Train one ablation variant (Fig. 5)."""
    name = name or profile_name()
    context = get_context(name)
    model = M2G4RTP(make_variant(variant, M2G4RTPConfig(seed=11)))
    trainer_config = TrainerConfig(epochs=context.profile.ablation_epochs,
                                   patience=6)
    Trainer(model, trainer_config).fit(context.train, context.validation)
    return model


def all_predictors(name: str = None):
    """name -> PredictFn for every method, in Table order."""
    baselines = get_baselines(name)
    predictors = {
        method: baseline_predictor(model) for method, model in baselines.items()
    }
    predictors["M2G4RTP"] = model_predictor(get_m2g4rtp(name))
    return {method: predictors[method] for method in METHOD_ORDER}


def write_result(filename: str, content: str) -> None:
    """Persist a rendered table under benchmarks/results/ and print it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / filename
    path.write_text(content + "\n")
    print(f"\n[{filename}]\n{content}")
