"""Perf/quality regression gate for the smoke load-scenario artifacts.

Diffs the freshly produced ``benchmarks/results/load_*_smoke.json``
artifacts against the blessed copies in ``benchmarks/baselines/``.
Smoke runs use the deterministic virtual clock, so the behavioural
counters (requests, degraded, shed, breaker opens, decisions, drift
alarms) must match the baseline *exactly*; only the latency percentile
gets a tolerance band (simulated service time has a seeded jitter, but
host scheduling can still move the tail by a fraction of a
millisecond).

Failures are printed as GitHub Actions ``::error`` annotations (and
soft tolerance exceedances as ``::warning``), so a regressing PR shows
the exact counter and delta on the workflow summary.  ``--update``
blesses the current results as the new baselines — commit the diff
when a behaviour change is intentional.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import shutil
import sys
from typing import Dict, List

BENCH_DIR = pathlib.Path(__file__).resolve().parent
RESULTS_DIR = BENCH_DIR / "results"
BASELINES_DIR = BENCH_DIR / "baselines"

#: Relative + absolute tolerance for the p99 latency comparison.
P99_REL_TOL = 0.10
P99_ABS_TOL_MS = 5.0

#: totals[...] counters that must match the baseline exactly.
EXACT_TOTALS = ("requests", "degraded", "shed", "breaker_opens",
                "errors", "invalid_responses")


def _annotate(level: str, message: str) -> None:
    """Print a plain line plus a GitHub workflow annotation."""
    print(f"{level.upper()}: {message}")
    print(f"::{level}::{message}")


def compare_artifact(name: str, current: Dict, baseline: Dict,
                     errors: List[str], warnings: List[str]) -> None:
    """Append human-readable findings for one scenario's artifact pair."""
    for key in EXACT_TOTALS:
        got = current["totals"].get(key)
        want = baseline["totals"].get(key)
        if got != want:
            errors.append(
                f"{name}: totals.{key} changed {want} -> {got} "
                f"(smoke runs are deterministic; counts must not move)")

    got_verdict = current["slo"]["passed"]
    want_verdict = baseline["slo"]["passed"]
    if got_verdict != want_verdict:
        errors.append(
            f"{name}: SLO verdict changed "
            f"{'PASS' if want_verdict else 'FAIL'} -> "
            f"{'PASS' if got_verdict else 'FAIL'}")

    got_p99 = float(current["slo"]["p99_ms"])
    want_p99 = float(baseline["slo"]["p99_ms"])
    band = max(P99_REL_TOL * want_p99, P99_ABS_TOL_MS)
    delta = got_p99 - want_p99
    if abs(delta) > band:
        errors.append(
            f"{name}: p99 latency {want_p99:.1f}ms -> {got_p99:.1f}ms "
            f"({delta:+.1f}ms, tolerance ±{band:.1f}ms)")
    elif abs(delta) > 0.5 * band:
        warnings.append(
            f"{name}: p99 latency drifting {want_p99:.1f}ms -> "
            f"{got_p99:.1f}ms ({delta:+.1f}ms, within ±{band:.1f}ms band)")

    got_actions = [d["action"] for d in current.get("decisions", [])]
    want_actions = [d["action"] for d in baseline.get("decisions", [])]
    if got_actions != want_actions:
        errors.append(
            f"{name}: deployment decisions changed "
            f"{want_actions} -> {got_actions}")

    # The (phase, event) sequence is pinned: shed onsets, shard kills,
    # respawns, corruption rejections and drift rollbacks must fire in
    # the same phase and order every run (details carry free text like
    # tempdir paths and are not compared).
    got_events = [(e["phase"], e["event"])
                  for e in current.get("events", [])]
    want_events = [(e["phase"], e["event"])
                   for e in baseline.get("events", [])]
    if got_events != want_events:
        errors.append(
            f"{name}: event sequence changed "
            f"{want_events} -> {got_events}")

    got_shards = current.get("shards")
    want_shards = baseline.get("shards")
    if (got_shards is None) != (want_shards is None):
        errors.append(f"{name}: shards block "
                      f"{'appeared' if want_shards is None else 'vanished'}")
    elif got_shards is not None:
        got_counts = [{k: s[k] for k in ("shard", "requests", "shed",
                                         "respawns", "swaps")}
                      for s in got_shards]
        want_counts = [{k: s[k] for k in ("shard", "requests", "shed",
                                          "respawns", "swaps")}
                       for s in want_shards]
        if got_counts != want_counts:
            errors.append(
                f"{name}: per-shard counters changed "
                f"{want_counts} -> {got_counts} (placement, shedding "
                f"and respawn behaviour must stay deterministic)")

    got_quality = current.get("quality")
    want_quality = baseline.get("quality")
    if (got_quality is None) != (want_quality is None):
        errors.append(f"{name}: quality block "
                      f"{'appeared' if want_quality is None else 'vanished'}")
    elif got_quality is not None:
        for key in ("verdict", "observations"):
            if got_quality[key] != want_quality[key]:
                errors.append(
                    f"{name}: quality.{key} changed "
                    f"{want_quality[key]!r} -> {got_quality[key]!r}")
        got_alarms = [(a["metric"], a["detector"], a["observations"])
                      for a in got_quality["alarms"]]
        want_alarms = [(a["metric"], a["detector"], a["observations"])
                       for a in want_quality["alarms"]]
        if got_alarms != want_alarms:
            errors.append(
                f"{name}: drift alarms changed "
                f"{want_alarms} -> {got_alarms} "
                f"(detector behaviour must stay bit-reproducible)")


def run(update: bool = False) -> int:
    results = sorted(RESULTS_DIR.glob("load_*_smoke.json"))
    if not results:
        _annotate("error",
                  "no smoke artifacts in benchmarks/results/ — run "
                  "bench_load_scenarios.py --smoke first")
        return 2

    if update:
        BASELINES_DIR.mkdir(exist_ok=True)
        for path in results:
            shutil.copy(path, BASELINES_DIR / path.name)
            print(f"blessed {path.name}")
        return 0

    if not BASELINES_DIR.exists():
        _annotate("error",
                  "benchmarks/baselines/ missing — bless with "
                  "check_regression.py --update and commit it")
        return 2

    errors: List[str] = []
    warnings: List[str] = []
    for path in results:
        baseline_path = BASELINES_DIR / path.name
        if not baseline_path.exists():
            warnings.append(
                f"{path.name}: new scenario with no baseline — bless it "
                f"with --update so future runs are gated")
            continue
        current = json.loads(path.read_text())
        baseline = json.loads(baseline_path.read_text())
        compare_artifact(current["scenario"], current, baseline,
                         errors, warnings)
    for baseline_path in sorted(BASELINES_DIR.glob("load_*_smoke.json")):
        if not (RESULTS_DIR / baseline_path.name).exists():
            errors.append(
                f"{baseline_path.name}: baseline exists but the scenario "
                f"produced no artifact this run")

    for message in warnings:
        _annotate("warning", message)
    for message in errors:
        _annotate("error", message)
    checked = len(results)
    if errors:
        print(f"\nregression gate FAILED: {len(errors)} finding(s) "
              f"across {checked} artifact(s)")
        return 1
    print(f"regression gate passed: {checked} artifact(s) within "
          f"tolerance ({len(warnings)} warning(s))")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--update", action="store_true",
                        help="bless current results as the new baselines")
    args = parser.parse_args()
    return run(update=args.update)


if __name__ == "__main__":
    sys.exit(main())
