"""Section VI — deployment-style service benchmark.

Replays the test set through the online pipeline (request → feature
extraction → inference → applications) and reports the service-level
quality the paper quotes from production (HR@3 66.89 / KRC 0.61;
RMSE 31.11 / MAE 22.40 for Shanghai).
"""

import numpy as np
import pytest

from repro.metrics import (
    RoutePrediction,
    TimePrediction,
    evaluate_route_predictions,
    evaluate_time_predictions,
)
from repro.service import ETAService, OrderSortingService, RTPRequest, RTPService

from common import get_context, get_m2g4rtp, write_result


@pytest.fixture(scope="module")
def service():
    return RTPService(get_m2g4rtp())


def test_service_replay_quality(service, benchmark):
    context = get_context()
    route_preds, time_preds, latencies = [], [], []
    for instance in context.test:
        response = service.handle(RTPRequest.from_instance(instance))
        route_preds.append(RoutePrediction(response.route, instance.route))
        time_preds.append(TimePrediction(response.eta_minutes,
                                         instance.arrival_times))
        latencies.append(response.latency_ms)

    route = evaluate_route_predictions(route_preds)
    time = evaluate_time_predictions(time_preds)
    text = (
        "Online service replay (Section VI)\n"
        f"  queries        : {len(latencies)}\n"
        f"  mean latency ms: {np.mean(latencies):.2f}\n"
        f"  HR@3           : {route['hr@3']:.2f} (paper online: 66.89)\n"
        f"  KRC            : {route['krc']:.2f} (paper online: 0.61)\n"
        f"  RMSE           : {time['rmse']:.2f} (paper online: 31.11)\n"
        f"  MAE            : {time['mae']:.2f} (paper online: 22.40)"
    )
    write_result("deployment_service.txt", text)
    assert route["krc"] > 0.3
    benchmark(service.handle, RTPRequest.from_instance(context.test[0]))


def test_bench_order_sorting(service, benchmark):
    context = get_context()
    sorting = OrderSortingService(service)
    request = RTPRequest.from_instance(context.test[0])
    orders = benchmark(sorting.sort_orders, request)
    assert len(orders) == request.num_locations


def test_bench_eta_service(service, benchmark):
    context = get_context()
    eta = ETAService(service)
    request = RTPRequest.from_instance(context.test[0])
    entries = benchmark(eta.etas, request)
    assert len(entries) == request.num_locations
