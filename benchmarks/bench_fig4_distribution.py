"""Figure 4 — data distribution of the workload.

Regenerates the four panels as text histograms: (a) location arrival
times, (b) AOI arrival times, (c) locations per sample, (d) AOIs per
sample — plus the AOI-first statistic from Section V-A (paper: 50.97
location transfers vs 6.20 AOI transfers per courier-day).
"""

import numpy as np
import pytest

from repro.data import RTPDataset, transfer_statistics

from common import get_context, write_result


def ascii_histogram(values, bins, title, width=40):
    counts, edges = np.histogram(values, bins=bins)
    peak = counts.max() if counts.max() else 1
    lines = [title]
    for count, lo, hi in zip(counts, edges[:-1], edges[1:]):
        bar = "#" * int(width * count / peak)
        lines.append(f"  [{lo:7.1f}, {hi:7.1f})  {count:5d}  {bar}")
    return "\n".join(lines)


@pytest.fixture(scope="module")
def context():
    return get_context()


def test_fig4_distributions(context, benchmark):
    dataset = context.dataset
    location_times = np.concatenate([i.arrival_times for i in dataset])
    aoi_times = np.concatenate([i.aoi_arrival_times for i in dataset])
    locations_per_sample = np.array([i.num_locations for i in dataset])
    aois_per_sample = np.array([i.num_aois for i in dataset])

    sections = [
        ascii_histogram(location_times, bins=np.arange(0, 241, 30),
                        title="(a) location arrival time (min), "
                              f"mean={location_times.mean():.2f} "
                              "(paper: 59.64)"),
        ascii_histogram(aoi_times, bins=np.arange(0, 241, 30),
                        title="(b) AOI arrival time (min), "
                              f"mean={aoi_times.mean():.2f} (paper: 61.68)"),
        ascii_histogram(locations_per_sample, bins=np.arange(2.5, 21.5, 2),
                        title="(c) locations per sample, "
                              f"mean={locations_per_sample.mean():.2f} "
                              "(paper: 7.64)"),
        ascii_histogram(aois_per_sample, bins=np.arange(0.5, 11.5, 1),
                        title="(d) AOIs per sample, "
                              f"mean={aois_per_sample.mean():.2f} "
                              "(paper: 4.08)"),
    ]
    write_result("fig4_distribution.txt", "\n\n".join(sections))

    # Shape checks mirroring the paper's description of Fig. 4.
    assert locations_per_sample.mean() < 12
    assert aois_per_sample.mean() < locations_per_sample.mean()
    within_120 = np.mean(location_times < 120)
    assert within_120 > 0.5, "most locations should be visited within 120 min"

    benchmark(lambda: dataset.summary())


def test_fig4_transfer_statistic(context, benchmark):
    days = [
        context.world.simulate_courier_day(c % len(context.world.couriers),
                                           day=0, seed=100 + c)
        for c in range(10)
    ]
    location_transfers, aoi_transfers = transfer_statistics(days)
    text = (
        "Courier-day transfer statistic (Section V-A)\n"
        f"  location transfers/day: {location_transfers:.2f} (paper: 50.97)\n"
        f"  AOI transfers/day     : {aoi_transfers:.2f} (paper: 6.20)\n"
        f"  ratio                 : {location_transfers / aoi_transfers:.1f}x"
    )
    write_result("fig4_transfers.txt", text)
    # The phenomenon: AOI transfers are an order of magnitude rarer.
    assert location_transfers / aoi_transfers > 5
    benchmark(transfer_statistics, days)


def test_bench_dataset_generation(benchmark):
    from repro.data import GeneratorConfig, SyntheticWorld

    def generate():
        world = SyntheticWorld(GeneratorConfig(
            num_aois=30, num_couriers=3, num_days=2, seed=1))
        return world.generate()

    instances = benchmark(generate)
    assert len(instances) > 0
