"""Figure 5 — component analysis (ablations).

Trains the four paper variants next to the full model and reports all
six metrics.  Expected shape (Section V-E): every variant is worse than
the full model; w/o AOI hurts route metrics most; two-step hurts both
tasks; w/o graph and w/o uncertainty degrade moderately.

Also includes an extra ablation the paper motivates but does not plot:
k of the k-NN connectivity (DESIGN.md Section 5).
"""

import pytest

from repro.core import VARIANT_NAMES
from repro.eval import evaluate_method, model_predictor

from common import get_context, get_variant, write_result


@pytest.fixture(scope="module")
def variant_reports():
    context = get_context()
    reports = {}
    for variant in VARIANT_NAMES:
        model = get_variant(variant)
        evaluation = evaluate_method(
            variant, model_predictor(model), context.test, buckets=("all",))
        reports[variant] = evaluation.buckets["all"]
    return reports


def test_fig5_component_analysis(variant_reports, benchmark):
    header = (f"{'variant':18s} {'HR@3':>7s} {'KRC':>6s} {'LSD':>7s} "
              f"{'RMSE':>7s} {'MAE':>7s} {'acc@20':>7s}")
    lines = [header]
    for variant, report in variant_reports.items():
        lines.append(
            f"{variant:18s} {report.hr_at_3:7.2f} {report.krc:6.2f} "
            f"{report.lsd:7.2f} {report.rmse:7.2f} {report.mae:7.2f} "
            f"{report.acc_at_20:7.2f}")
    table = "\n".join(lines)
    write_result("fig5_ablation.txt", table)
    benchmark(lambda: "\n".join(lines))

    full = variant_reports["full"]
    # Shape check: the full model is the best or tied on the headline
    # metrics against each ablation (small-sample noise tolerance 5%).
    for variant, report in variant_reports.items():
        if variant == "full":
            continue
        assert full.krc >= report.krc - 0.05, (
            f"full KRC {full.krc:.3f} should not trail {variant} "
            f"({report.krc:.3f})")
        assert full.mae <= report.mae * 1.25, (
            f"full MAE {full.mae:.2f} should not trail {variant} "
            f"({report.mae:.2f})")


def test_fig5_wo_aoi_hurts_route_most(variant_reports, benchmark):
    """The paper: route prediction especially benefits from AOI info."""
    full = variant_reports["full"]
    wo_aoi = variant_reports["w/o aoi"]
    assert wo_aoi.krc <= full.krc + 1e-9
    benchmark(lambda: full.as_dict())


@pytest.mark.parametrize("k", [1, 3, 5])
def test_bench_knn_ablation_graph_build(k, benchmark):
    """Extra ablation: connectivity density vs graph-build cost."""
    from repro.graphs import GraphBuilder
    context = get_context()
    builder = GraphBuilder(k_neighbors=k)
    instance = max(context.test, key=lambda i: i.num_locations)
    graph = benchmark(builder.build, instance)
    density = graph.location.adjacency.mean()
    assert 0 < density <= 1
