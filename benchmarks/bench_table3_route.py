"""Table III — route prediction (HR@3 / KRC / LSD) for all 8 methods.

Regenerates the paper's route-prediction table on the synthetic
workload: every method evaluated on the (3-10], (10-20] and all
buckets.  The expected *shape* (not absolute values): learned methods
beat pure heuristics, and M²G4RTP posts the best HR@3/KRC/LSD overall.
"""

import pytest

from repro.eval import evaluate_method, format_table

from common import all_predictors, get_context, profile_name, write_result

BUCKETS = ("(3-10]", "(10-20]", "all")


@pytest.fixture(scope="module")
def evaluations():
    context = get_context()
    predictors = all_predictors()
    return [
        evaluate_method(name, predict, context.test, buckets=BUCKETS)
        for name, predict in predictors.items()
    ]


def test_table3_route_prediction(evaluations, benchmark):
    table = format_table(evaluations, "route", buckets=BUCKETS)
    write_result("table3_route.txt", table)
    benchmark(format_table, evaluations, "route")

    by_name = {evaluation.name: evaluation for evaluation in evaluations}
    ours = by_name["M2G4RTP"].buckets["all"]
    # Shape check 1: M2G4RTP beats every baseline on overall KRC.
    for name, evaluation in by_name.items():
        if name == "M2G4RTP":
            continue
        assert ours.krc >= evaluation.buckets["all"].krc - 1e-9, (
            f"M2G4RTP KRC {ours.krc:.3f} below {name} "
            f"{evaluation.buckets['all'].krc:.3f}")
    # Shape check 2: it beats the shortest-route heuristic clearly.
    assert ours.hr_at_3 > by_name["OR-Tools"].buckets["all"].hr_at_3
    assert ours.lsd < by_name["OR-Tools"].buckets["all"].lsd


def test_bench_m2g4rtp_route_inference(benchmark):
    context = get_context()
    predict = all_predictors()["M2G4RTP"]
    instance = max(context.test, key=lambda i: i.num_locations)
    benchmark(predict, instance)
