"""Figure 6 — case study.

Reproduces the paper's two-case analysis on the richest test
instances:

* Case 1 (vs Graph2Route): the single-level graph baseline crosses AOI
  boundaries more often than the real route; M²G4RTP, which models the
  AOI-level transfer mode, stays closer to the AOI-first structure.
* Case 2 (vs FDNET): per-instance RMSE/MAE of the joint model beats the
  two-step FDNET (paper: 11.56/10.43 vs 15.28/12.94).
"""

import numpy as np
import pytest

from repro.eval import (
    aoi_switch_count,
    baseline_predictor,
    build_case_study,
    model_predictor,
    select_interesting_cases,
)

from common import all_predictors, get_baselines, get_context, get_m2g4rtp, write_result


@pytest.fixture(scope="module")
def cases():
    context = get_context()
    predictors = {
        "Graph2Route": baseline_predictor(get_baselines()["Graph2Route"]),
        "FDNET": baseline_predictor(get_baselines()["FDNET"]),
        "M2G4RTP": model_predictor(get_m2g4rtp()),
    }
    instances = select_interesting_cases(list(context.test), count=3,
                                         min_aois=3)
    return [build_case_study(instance, predictors) for instance in instances]


def test_fig6_case_study_rendering(cases, benchmark):
    text = "\n\n".join(case.render() for case in cases)
    write_result("fig6_case_study.txt", text)
    benchmark(lambda: cases[0].render())
    assert all(len(case.results) == 3 for case in cases)


def test_fig6_svg_maps(cases, benchmark):
    """Write viewable SVG route maps, the visual half of Fig. 6."""
    from repro.eval import write_case_svgs
    from common import RESULTS_DIR
    paths = write_case_svgs(cases, RESULTS_DIR, prefix="fig6_case")
    assert all(path.exists() for path in paths)
    from repro.eval import render_case_svg
    benchmark(render_case_svg, cases[0])


def test_fig6_aoi_switch_structure(cases, benchmark):
    """Case 1 shape: across cases, M²G4RTP's routes cross AOI boundaries
    no more often (on average) than the single-level Graph2Route."""
    ours, theirs = [], []
    for case in cases:
        aoi_of = case.instance.aoi_index_of_location()
        by_method = {result.method: result for result in case.results}
        ours.append(aoi_switch_count(by_method["M2G4RTP"].route, aoi_of))
        theirs.append(aoi_switch_count(by_method["Graph2Route"].route, aoi_of))
    assert np.mean(ours) <= np.mean(theirs) + 0.5
    aoi_of = cases[0].instance.aoi_index_of_location()
    benchmark(aoi_switch_count, cases[0].results[0].route, aoi_of)


def test_fig6_time_vs_fdnet(cases, benchmark):
    """Case 2 shape: joint prediction beats the two-step FDNET on the
    per-instance time errors, averaged over the selected cases."""
    ours = np.mean([
        next(r for r in case.results if r.method == "M2G4RTP").mae
        for case in cases])
    fdnet = np.mean([
        next(r for r in case.results if r.method == "FDNET").mae
        for case in cases])
    assert ours < fdnet * 1.5  # clearly not worse; usually much better
    benchmark(lambda: [r.mae for case in cases for r in case.results])
