"""Online continual-learning loop, end to end, with a pinned outcome.

Drives the ``continual_drift`` load scenario — a persistent storm
regime that both slows the modeled service *and* shifts every actual
arrival by ``quality_shift_minutes`` (+ weather-coupled delays) — and
asserts the full self-rollout arc:

1. the quality stream raises drift alarms while serving SLOs stay
   green (the shift is invisible to latency metrics);
2. the :class:`repro.online.RetrainPolicy` arms on the alarm quorum,
   waits for post-shift experiences, and triggers exactly one retrain;
3. the :class:`repro.online.OnlineTrainer` fine-tunes the serving
   parent on the experience window and registers the student with full
   lineage (parent version, trigger, window span, gate verdict);
4. the :class:`repro.online.AntiRegressionGate` passes the student on
   the **mixture holdout** — the shifted window slice *and* the frozen
   clean slice (replay fine-tuning keeps the clean-holdout MAE within
   the forgetting budget) — the student canaries, and the
   quality-gated rollout policy promotes it on windowed ETA MAE;
5. post-promotion the student's windowed ETA MAE on the shifted stream
   is a fraction of the frozen parent's, while its clean-holdout MAE
   stays within 1.5x of the parent's.

A second leg drives the ``regime_cycle`` scenario — the same storm
arc, but the storm *clears* — and asserts the per-regime model zoo:
the promoted storm student is swapped out for the original calm-regime
model when the regime vote flips (``online_zoo_reactivated``), with no
second retrain.

Both runs are virtual-clock and bit-reproducible; the JSON artifacts
are schema-validated, reconciled against the live metrics registry,
and written to ``benchmarks/results/load_continual_drift_smoke.json``
/ ``load_regime_cycle_smoke.json`` in smoke mode so
``check_regression.py`` pins the drift → retrain → promote (→ revert →
reactivate) event sequences against the blessed baselines.

``--smoke`` is the CI-sized run (1-second nominal phases; the scenario
floors them so the loop always completes); the default uses the
standard 5-second phases.  A second pass with ``--closed-loop`` would
hide the storm's queueing (coordinated omission) — the comparison mode
lives in ``repro-rtp load --closed-loop``.
"""

from __future__ import annotations

import argparse
import pathlib

from repro.load import (LoadRunConfig, reconcile_with_registry,
                        run_scenario, validate_artifact, write_artifact)

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"

#: The (event) arc the loop must produce, in order.  ``drift_alarm``
#: may repeat; the online_* milestones must each fire exactly once.
PINNED_SEQUENCE = ("label_shift", "drift_alarm", "online_retrain_started",
                   "online_candidate_registered", "online_canary_started")

#: The regime-cycle arc: the continual-drift milestones, then the
#: storm clears and the zoo swaps the calm model back in — without a
#: second retrain.
PINNED_CYCLE = PINNED_SEQUENCE + ("regime_revert",
                                  "online_zoo_reactivated")

#: Forgetting budget: the promoted student's MAE on the frozen clean
#: holdout may be at most this multiple of the frozen parent's (the
#: gate's ``max_clean_regression_ratio`` default).
CLEAN_BUDGET = 1.5


def check_loop_outcome(artifact: dict) -> None:
    """The acceptance invariants of the continual-learning loop."""
    events = [e["event"] for e in artifact["events"]]
    cursor = -1
    for needed in PINNED_SEQUENCE:
        assert needed in events, f"missing {needed!r} in event log"
        index = events.index(needed)
        assert index > cursor, (
            f"{needed!r} fired out of order: event log {events}")
        cursor = index
    for milestone in PINNED_SEQUENCE[2:]:
        assert events.count(milestone) == 1, (
            f"{milestone!r} must fire exactly once (cooldown/hysteresis)")

    actions = [d["action"] for d in artifact["decisions"]]
    assert actions == ["promote"], (
        f"the student must canary-promote exactly once, got {actions}")
    assert artifact["decisions"][0]["reason"].startswith("quality:"), (
        "promotion must be the quality-gated verdict, not request count")

    assert artifact["quality"]["verdict"] == "drift"
    by_version = artifact["quality"]["segments"]["model_version"]
    assert len(by_version) == 2, (
        f"expected parent + student segments, got {sorted(by_version)}")
    parent, student = sorted(by_version)
    improvement = (by_version[student]["eta_mae"]
                   / by_version[parent]["eta_mae"])
    assert improvement < 0.5, (
        f"student/parent windowed ETA MAE ratio {improvement:.3f} must "
        f"be < 0.5 after adapting to the shift")

    assert artifact["slo"]["passed"], (
        "the label shift and retrain must never break serving SLOs")
    assert artifact["totals"]["invalid_responses"] == 0


def check_forgetting_bounded(gate: dict) -> None:
    """The mixture-gate verdict of the promoted student."""
    assert gate["passed"], f"gate rejected the student: {gate['reason']}"
    assert gate["clean_holdout_size"] > 0, (
        "the gate must have scored a frozen clean slice")
    assert gate["replay_samples"] > 0, (
        "the fine-tune must have interleaved replay experiences")
    ratio = gate["clean_student_mae"] / gate["clean_parent_mae"]
    assert ratio <= CLEAN_BUDGET, (
        f"clean-holdout MAE {gate['clean_student_mae']:.1f} vs parent "
        f"{gate['clean_parent_mae']:.1f} (ratio {ratio:.2f}) exceeds the "
        f"{CLEAN_BUDGET}x forgetting budget")


def check_cycle_outcome(artifact: dict) -> None:
    """The acceptance invariants of the regime-revert arc."""
    events = [e["event"] for e in artifact["events"]]
    cursor = -1
    for needed in PINNED_CYCLE:
        assert needed in events, f"missing {needed!r} in event log"
        index = events.index(needed)
        assert index > cursor, (
            f"{needed!r} fired out of order: event log {events}")
        cursor = index
    assert events.count("online_retrain_started") == 1, (
        "the returning regime must swap the zoo entry back in — a "
        "second retrain means the zoo failed")
    assert events.count("online_zoo_reactivated") == 1

    actions = [d["action"] for d in artifact["decisions"]]
    assert actions == ["promote"], (
        f"the storm student must canary-promote exactly once, got {actions}")
    assert artifact["slo"]["passed"], (
        "the regime cycle must never break serving SLOs on gated phases")
    assert artifact["totals"]["invalid_responses"] == 0


def run(smoke: bool = False, seed: int = 0) -> str:
    config = LoadRunConfig(
        phase_duration_s=1.0 if smoke else 5.0, virtual=True, seed=seed)
    suffix = "_smoke" if smoke else ""
    RESULTS_DIR.mkdir(exist_ok=True)

    result = run_scenario("continual_drift", config)
    artifact = result.artifact
    validate_artifact(artifact)
    reconcile_with_registry(artifact, result.context.metrics)
    check_loop_outcome(artifact)
    candidate = result.context.online.candidates[0]
    gate = dict(candidate["gate"], replay_samples=candidate["replay_samples"])
    check_forgetting_bounded(gate)
    write_artifact(artifact,
                   RESULTS_DIR / f"load_continual_drift{suffix}.json")

    cycle = run_scenario("regime_cycle", config)
    cycle_artifact = cycle.artifact
    validate_artifact(cycle_artifact)
    reconcile_with_registry(cycle_artifact, cycle.context.metrics)
    check_cycle_outcome(cycle_artifact)
    assert cycle.context.online.reactivations == 1
    write_artifact(cycle_artifact,
                   RESULTS_DIR / f"load_regime_cycle{suffix}.json")

    by_version = artifact["quality"]["segments"]["model_version"]
    parent, student = sorted(by_version)
    events = [e["event"] for e in artifact["events"]]
    alarms = events.count("drift_alarm")
    decision = artifact["decisions"][0]
    cycle_events = [(e["phase"], e["event"])
                    for e in cycle_artifact["events"]]
    swap_phase = next(phase for phase, event in cycle_events
                      if event == "online_zoo_reactivated")
    zoo = cycle.context.online.zoo.mapping()
    lines = [
        "Online continual-learning loop" + (" (smoke)" if smoke else ""),
        f"  scenario continual_drift, clock {config.mode}, "
        f"seed {config.seed}",
        "",
        f"  drift alarms raised         {alarms}",
        f"  retrains triggered          {events.count('online_retrain_started')}",
        f"  candidate                   {decision['version']} "
        f"(parent {parent})",
        f"  replay samples interleaved  {gate['replay_samples']}",
        f"  decision                    {decision['action']} — "
        f"{decision['reason']}",
        "",
        "  windowed ETA MAE on the shifted stream:",
        f"    frozen parent {parent:8s} "
        f"{by_version[parent]['eta_mae']:8.1f} min "
        f"({by_version[parent]['routes']:.0f} routes)",
        f"    student       {student:8s} "
        f"{by_version[student]['eta_mae']:8.1f} min "
        f"({by_version[student]['routes']:.0f} routes)",
        f"    ratio                    "
        f"{by_version[student]['eta_mae'] / by_version[parent]['eta_mae']:8.3f}",
        "",
        "  gate mixture holdout (forgetting budget "
        f"{CLEAN_BUDGET:.1f}x):",
        f"    clean slice   parent {gate['clean_parent_mae']:8.1f} min   "
        f"student {gate['clean_student_mae']:8.1f} min   "
        f"ratio {gate['clean_student_mae'] / gate['clean_parent_mae']:.3f}",
        f"    shifted slice parent {gate['parent_mae']:8.1f} min   "
        f"student {gate['student_mae']:8.1f} min   "
        f"ratio {gate['mae_ratio']:.3f}",
        "",
        "  regime cycle (storm clears):",
        f"    zoo entries               {len(zoo)} "
        f"({', '.join(f'{k}={v}' for k, v in sorted(zoo.items()))})",
        f"    reactivations             "
        f"{cycle.context.online.reactivations} "
        f"(in phase {swap_phase!r}, no second retrain)",
        "",
        "  serving SLO " + ("PASS" if artifact["slo"]["passed"] else "FAIL")
        + f" (p99 {artifact['slo']['p99_ms']:.1f} ms on gated phases)",
    ]
    return "\n".join(lines)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized deterministic run")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    report = run(smoke=args.smoke, seed=args.seed)
    suffix = "_smoke" if args.smoke else ""
    out = RESULTS_DIR / f"online_loop{suffix}.txt"
    out.write_text(report + "\n")
    print(report)
    print(f"\nwrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
