"""Online continual-learning loop, end to end, with a pinned outcome.

Drives the ``continual_drift`` load scenario — a persistent storm
regime that both slows the modeled service *and* shifts every actual
arrival by ``quality_shift_minutes`` (+ weather-coupled delays) — and
asserts the full self-rollout arc:

1. the quality stream raises drift alarms while serving SLOs stay
   green (the shift is invisible to latency metrics);
2. the :class:`repro.online.RetrainPolicy` arms on the alarm quorum,
   waits for post-shift experiences, and triggers exactly one retrain;
3. the :class:`repro.online.OnlineTrainer` fine-tunes the serving
   parent on the experience window and registers the student with full
   lineage (parent version, trigger, window span, gate verdict);
4. the :class:`repro.online.AntiRegressionGate` passes the student on
   the held-out slice, the student canaries, and the quality-gated
   rollout policy promotes it on windowed ETA MAE;
5. post-promotion the student's windowed ETA MAE on the shifted stream
   is a fraction of the frozen parent's.

The run is virtual-clock and bit-reproducible; the JSON artifact is
schema-validated, reconciled against the live metrics registry, and
written to ``benchmarks/results/load_continual_drift_smoke.json`` in
smoke mode so ``check_regression.py`` pins the drift → retrain →
promote event sequence against the blessed baseline.

``--smoke`` is the CI-sized run (1-second nominal phases; the scenario
floors them so the loop always completes); the default uses the
standard 5-second phases.  A second pass with ``--closed-loop`` would
hide the storm's queueing (coordinated omission) — the comparison mode
lives in ``repro-rtp load --closed-loop``.
"""

from __future__ import annotations

import argparse
import pathlib

from repro.load import (LoadRunConfig, reconcile_with_registry,
                        run_scenario, validate_artifact, write_artifact)

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"

#: The (event) arc the loop must produce, in order.  ``drift_alarm``
#: may repeat; the online_* milestones must each fire exactly once.
PINNED_SEQUENCE = ("label_shift", "drift_alarm", "online_retrain_started",
                   "online_candidate_registered", "online_canary_started")


def check_loop_outcome(artifact: dict) -> None:
    """The acceptance invariants of the continual-learning loop."""
    events = [e["event"] for e in artifact["events"]]
    cursor = -1
    for needed in PINNED_SEQUENCE:
        assert needed in events, f"missing {needed!r} in event log"
        index = events.index(needed)
        assert index > cursor, (
            f"{needed!r} fired out of order: event log {events}")
        cursor = index
    for milestone in PINNED_SEQUENCE[2:]:
        assert events.count(milestone) == 1, (
            f"{milestone!r} must fire exactly once (cooldown/hysteresis)")

    actions = [d["action"] for d in artifact["decisions"]]
    assert actions == ["promote"], (
        f"the student must canary-promote exactly once, got {actions}")
    assert artifact["decisions"][0]["reason"].startswith("quality:"), (
        "promotion must be the quality-gated verdict, not request count")

    assert artifact["quality"]["verdict"] == "drift"
    by_version = artifact["quality"]["segments"]["model_version"]
    assert len(by_version) == 2, (
        f"expected parent + student segments, got {sorted(by_version)}")
    parent, student = sorted(by_version)
    improvement = (by_version[student]["eta_mae"]
                   / by_version[parent]["eta_mae"])
    assert improvement < 0.5, (
        f"student/parent windowed ETA MAE ratio {improvement:.3f} must "
        f"be < 0.5 after adapting to the shift")

    assert artifact["slo"]["passed"], (
        "the label shift and retrain must never break serving SLOs")
    assert artifact["totals"]["invalid_responses"] == 0


def run(smoke: bool = False, seed: int = 0) -> str:
    config = LoadRunConfig(
        phase_duration_s=1.0 if smoke else 5.0, virtual=True, seed=seed)
    result = run_scenario("continual_drift", config)
    artifact = result.artifact
    validate_artifact(artifact)
    reconcile_with_registry(artifact, result.context.metrics)
    check_loop_outcome(artifact)

    suffix = "_smoke" if smoke else ""
    RESULTS_DIR.mkdir(exist_ok=True)
    write_artifact(artifact,
                   RESULTS_DIR / f"load_continual_drift{suffix}.json")

    by_version = artifact["quality"]["segments"]["model_version"]
    parent, student = sorted(by_version)
    events = [e["event"] for e in artifact["events"]]
    alarms = events.count("drift_alarm")
    decision = artifact["decisions"][0]
    lines = [
        "Online continual-learning loop" + (" (smoke)" if smoke else ""),
        f"  scenario continual_drift, clock {config.mode}, "
        f"seed {config.seed}",
        "",
        f"  drift alarms raised         {alarms}",
        f"  retrains triggered          {events.count('online_retrain_started')}",
        f"  candidate                   {decision['version']} "
        f"(parent {parent})",
        f"  decision                    {decision['action']} — "
        f"{decision['reason']}",
        "",
        "  windowed ETA MAE on the shifted stream:",
        f"    frozen parent {parent:8s} "
        f"{by_version[parent]['eta_mae']:8.1f} min "
        f"({by_version[parent]['routes']:.0f} routes)",
        f"    student       {student:8s} "
        f"{by_version[student]['eta_mae']:8.1f} min "
        f"({by_version[student]['routes']:.0f} routes)",
        f"    ratio                    "
        f"{by_version[student]['eta_mae'] / by_version[parent]['eta_mae']:8.3f}",
        "",
        "  serving SLO " + ("PASS" if artifact["slo"]["passed"] else "FAIL")
        + f" (p99 {artifact['slo']['p99_ms']:.1f} ms on gated phases)",
    ]
    return "\n".join(lines)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized deterministic run")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    report = run(smoke=args.smoke, seed=args.seed)
    suffix = "_smoke" if args.smoke else ""
    out = RESULTS_DIR / f"online_loop{suffix}.txt"
    out.write_text(report + "\n")
    print(report)
    print(f"\nwrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
