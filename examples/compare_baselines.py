"""Compare M²G4RTP against all Section V-B baselines on one dataset.

A smaller, faster version of benchmarks/bench_table3_route.py /
bench_table4_time.py intended for interactive exploration.

Run with::

    python examples/compare_baselines.py
"""

from repro import (
    GeneratorConfig,
    M2G4RTP,
    M2G4RTPConfig,
    RTPDataset,
    SyntheticWorld,
    Trainer,
    TrainerConfig,
    baseline_predictor,
    evaluate_method,
    format_table,
    model_predictor,
)
from repro.baselines import (
    DeepBaselineConfig,
    DeepRoute,
    DistanceGreedy,
    FDNET,
    Graph2Route,
    OSquare,
    ShortestRouteTSP,
    TimeGreedy,
)


def main():
    world = SyntheticWorld(GeneratorConfig(
        num_aois=60, num_couriers=6, num_days=10,
        instances_per_courier_day=2, seed=99))
    dataset = RTPDataset(world.generate()).filter_paper_scope()
    train, validation, test = dataset.split_by_day()
    print(f"{len(train)} train / {len(validation)} val / {len(test)} test")

    deep_config = DeepBaselineConfig(epochs=6, time_epochs=4)
    baselines = [
        DistanceGreedy(), TimeGreedy(), ShortestRouteTSP(),
        OSquare(n_estimators=20),
        DeepRoute(deep_config), FDNET(deep_config), Graph2Route(deep_config),
    ]

    evaluations = []
    for baseline in baselines:
        print(f"fitting {baseline.name} ...")
        baseline.fit(train, validation)
        evaluations.append(evaluate_method(
            baseline.name, baseline_predictor(baseline), test))

    print("fitting M2G4RTP ...")
    model = M2G4RTP(M2G4RTPConfig(seed=0))
    Trainer(model, TrainerConfig(epochs=12, patience=5)).fit(train, validation)
    evaluations.append(evaluate_method(
        "M2G4RTP", model_predictor(model), test))

    print("\nRoute prediction (Table III analogue):")
    print(format_table(evaluations, "route"))
    print("\nTime prediction (Table IV analogue):")
    print(format_table(evaluations, "time"))


if __name__ == "__main__":
    main()
