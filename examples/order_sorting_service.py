"""Intelligent Order Sorting (paper Section VI-B).

Reproduces the deployed application: the courier's unpicked orders are
ranked by the predicted future route instead of the old time-greedy /
distance-greedy listings, so the app's order list matches the courier's
actual working habits.

Run with::

    python examples/order_sorting_service.py
"""

from repro import (
    GeneratorConfig,
    M2G4RTP,
    M2G4RTPConfig,
    OrderSortingService,
    RTPDataset,
    RTPRequest,
    RTPService,
    SyntheticWorld,
    Trainer,
    TrainerConfig,
)
from repro.metrics import hit_rate_at_k, kendall_rank_correlation


def render_app_screen(orders, title):
    lines = [f"--- {title} ---",
             f"{'#':>2s}  {'order':>6s}  {'AOI':>5s}  {'ETA':>7s}  {'deadline':>9s}"]
    for order in orders:
        lines.append(
            f"{order.position:2d}  {order.location_id:6d}  {order.aoi_id:5d}  "
            f"{order.eta_minutes:5.0f}min  {order.deadline_minutes:6.0f}min")
    return "\n".join(lines)


def main():
    world = SyntheticWorld(GeneratorConfig(
        num_aois=60, num_couriers=6, num_days=10, seed=21))
    dataset = RTPDataset(world.generate()).filter_paper_scope()
    train, validation, test = dataset.split_by_day()

    print("training the route-and-time model behind the service ...")
    model = M2G4RTP(M2G4RTPConfig(seed=3))
    trainer = Trainer(model, TrainerConfig(epochs=10, patience=4))
    trainer.fit(train, validation)

    service = RTPService(model)
    sorting = OrderSortingService(service)

    # Replay a few couriers' order screens and score the ranking quality
    # the way the paper reports it for the deployed system (HR@3, KRC).
    hit_rates, correlations = [], []
    for instance in test:
        request = RTPRequest.from_instance(instance)
        orders = sorting.sort_orders(request)
        predicted_route = [
            next(i for i, loc in enumerate(request.locations)
                 if loc.location_id == order.location_id)
            for order in orders
        ]
        hit_rates.append(hit_rate_at_k(predicted_route, instance.route, 3))
        correlations.append(
            kendall_rank_correlation(predicted_route, instance.route))

    example = RTPRequest.from_instance(test[0])
    print()
    print(render_app_screen(sorting.sort_orders(example),
                            "Cainiao APP: intelligent order list"))
    print()
    print(f"served {service.queries_served} queries")
    print(f"order-sorting HR@3: {100 * sum(hit_rates) / len(hit_rates):.2f} "
          "(paper online: 66.89)")
    print(f"order-sorting KRC : {sum(correlations) / len(correlations):.2f} "
          "(paper online: 0.61)")


if __name__ == "__main__":
    main()
