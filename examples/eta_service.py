"""Minute-Level ETA service (paper Section VI-C).

Reproduces the deployed user-facing application: instead of the old
"within 2 hours" promise, every customer gets a minute-level ETA, a
pre-arrival notification time, and an overdue-risk flag the platform
can act on.

Run with::

    python examples/eta_service.py
"""

import numpy as np

from repro import (
    ETAService,
    GeneratorConfig,
    M2G4RTP,
    M2G4RTPConfig,
    RTPDataset,
    RTPRequest,
    RTPService,
    SyntheticWorld,
    Trainer,
    TrainerConfig,
)
from repro.metrics import accuracy_within, mae, rmse


def main():
    world = SyntheticWorld(GeneratorConfig(
        num_aois=60, num_couriers=6, num_days=10, seed=33))
    dataset = RTPDataset(world.generate()).filter_paper_scope()
    train, validation, test = dataset.split_by_day()

    print("training the model behind the minute-level ETA service ...")
    model = M2G4RTP(M2G4RTPConfig(seed=4))
    Trainer(model, TrainerConfig(epochs=10, patience=4)).fit(train, validation)

    service = RTPService(model)
    eta_service = ETAService(service, notify_ahead_minutes=10.0)

    # One customer-facing screen.
    request = RTPRequest.from_instance(test[0])
    entries = eta_service.etas(request)
    print("\n--- Cainiao APP: minute-level ETA ---")
    for entry in entries:
        risk = "  (!) may miss deadline" if entry.overdue_risk else ""
        print(f"  order {entry.location_id}: courier arrives in "
              f"~{entry.eta_minutes:.0f} min; we will notify you at "
              f"{entry.notify_at_minutes:.0f} min{risk}")

    # Replay the whole test set and score the ETA quality the way the
    # paper reports it for the Shanghai deployment.
    predicted, actual = [], []
    for instance in test:
        entries = eta_service.etas(RTPRequest.from_instance(instance))
        eta_by_id = {entry.location_id: entry.eta_minutes for entry in entries}
        for location, true_minutes in zip(instance.locations,
                                          instance.arrival_times):
            predicted.append(eta_by_id[location.location_id])
            actual.append(true_minutes)
    predicted, actual = np.array(predicted), np.array(actual)

    print("\nETA replay over the test days:")
    print(f"  RMSE   : {rmse(predicted, actual):.2f} (paper online: 31.11)")
    print(f"  MAE    : {mae(predicted, actual):.2f} (paper online: 22.40)")
    print(f"  acc@20 : {100 * accuracy_within(predicted, actual, 20):.2f}%")


if __name__ == "__main__":
    main()
