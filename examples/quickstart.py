"""Quickstart: generate data, train M²G4RTP, evaluate, predict.

Run with::

    python examples/quickstart.py

Takes about a minute on a laptop.  For a larger run, raise the
generator sizes and training epochs.
"""

from repro import (
    GeneratorConfig,
    M2G4RTP,
    M2G4RTPConfig,
    RTPDataset,
    SyntheticWorld,
    Trainer,
    TrainerConfig,
    evaluate_method,
    format_table,
    model_predictor,
)


def main():
    # 1. Build a synthetic city and generate courier pick-up instances.
    #    (The paper uses proprietary Cainiao logs; see DESIGN.md for the
    #    substitution rationale and repro.data.lade for real-data import.)
    world = SyntheticWorld(GeneratorConfig(
        num_aois=60, num_couriers=6, num_days=10,
        instances_per_courier_day=2, seed=7))
    dataset = RTPDataset(world.generate()).filter_paper_scope()
    train, validation, test = dataset.split_by_day()
    print(f"dataset: {dataset.summary()}")
    print(f"split: {len(train)} train / {len(validation)} val / {len(test)} test")

    # 2. Train the multi-level multi-task model.
    model = M2G4RTP(M2G4RTPConfig(seed=0))
    trainer = Trainer(model, TrainerConfig(epochs=10, patience=4, verbose=True))
    history = trainer.fit(train, validation)
    print(f"trained {history.num_epochs} epochs; "
          f"best val loss at epoch {history.best_epoch}")
    print(f"learned task sigmas: {model.loss_weighting.sigmas()}")

    # 3. Evaluate with the paper's six metrics over the size buckets.
    evaluation = evaluate_method("M2G4RTP", model_predictor(model), test)
    print()
    print(format_table([evaluation], "route"))
    print()
    print(format_table([evaluation], "time"))

    # 4. Joint route + time prediction for a single request.
    instance = test[0]
    output = model.predict(trainer.builder.build(instance))
    print(f"\nexample instance: {instance.describe()}")
    print(f"  true route      : {instance.route.tolist()}")
    print(f"  predicted route : {output.route.tolist()}")
    print(f"  true times (min): {[round(float(t), 1) for t in instance.arrival_times]}")
    print(f"  predicted (min) : {[round(float(t), 1) for t in output.arrival_times]}")
    print(f"  AOI route       : {output.aoi_route.tolist()} "
          f"(true {instance.aoi_route.tolist()})")


if __name__ == "__main__":
    main()
