"""Train from LaDe-style CSV files — the real-data path.

The paper's dataset is proprietary, but the public LaDe release (and
any courier log with the same schema) can be used instead.  This
example shows the full path: export a dataset to the CSV format, load
it back as if it were external data, and train/evaluate on it.

Run with::

    python examples/lade_pipeline.py
"""

import tempfile
from pathlib import Path

from repro import (
    GeneratorConfig,
    M2G4RTP,
    M2G4RTPConfig,
    RTPDataset,
    SyntheticWorld,
    Trainer,
    TrainerConfig,
    evaluate_method,
    format_table,
    model_predictor,
)
from repro.data import read_csv, write_csv


def main():
    # Stand-in for "download LaDe": write a CSV in the expected schema.
    world = SyntheticWorld(GeneratorConfig(
        num_aois=50, num_couriers=5, num_days=8, seed=17))
    source = RTPDataset(world.generate()).filter_paper_scope()

    with tempfile.TemporaryDirectory() as tmp:
        csv_path = Path(tmp) / "courier_pickups.csv"
        write_csv(list(source), csv_path)
        print(f"wrote {len(source)} instances to {csv_path.name} "
              f"({csv_path.stat().st_size // 1024} KiB)")

        # From here on, everything works from the CSV alone.
        dataset = read_csv(csv_path)
        print(f"loaded: {dataset.summary()}")
        train, validation, test = dataset.split_by_day()

        model = M2G4RTP(M2G4RTPConfig(seed=1))
        Trainer(model, TrainerConfig(epochs=8, patience=4)).fit(
            train, validation)

        evaluation = evaluate_method(
            "M2G4RTP(csv)", model_predictor(model), test)
        print()
        print(format_table([evaluation], "route"))
        print()
        print(format_table([evaluation], "time"))


if __name__ == "__main__":
    main()
