"""Run a registered experiment and render its result as markdown.

The experiments package pins down data, methods and budgets in one
spec, so a comparison is reproducible from a single name::

    python examples/run_experiment.py [smoke|table3|table4|fig5]

``smoke`` (default) takes well under a minute; the table/fig specs
retrain every method and take several minutes.
"""

import sys

from repro.experiments import get_spec, run_experiment


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "smoke"
    spec = get_spec(name)
    print(f"experiment : {spec.name} — {spec.description}")
    print(f"methods    : {', '.join(spec.methods) or '(variants only)'}")
    if spec.variants:
        print(f"variants   : {', '.join(spec.variants)}")
    print()

    result = run_experiment(spec, verbose=True)

    print(f"\nfinished in {result.seconds:.1f}s\n")
    print("Route metrics (bucket: all)")
    print(result.render_markdown("route"))
    print()
    print("Time metrics (bucket: all)")
    print(result.render_markdown("time"))
    print()
    print(f"best KRC : {result.best('krc')}")
    print(f"best MAE : {result.best('mae', higher_is_better=False)}")

    out = f"experiment_{spec.name}.json"
    result.save(out)
    print(f"\nsaved raw metrics to {out}")


if __name__ == "__main__":
    main()
