"""Dynamic-day replay: re-prediction as the courier's order set changes.

The deployed system (paper Sections V-F and VI) issues a new RTP query
whenever the set of unvisited locations changes — after each pickup and
each newly dispatched order.  This example simulates such a day and
replays every event through the trained service, reporting how route
and ETA quality evolve over the day.

Run with::

    python examples/dynamic_replay.py
"""

import numpy as np

from repro import (
    GeneratorConfig,
    M2G4RTP,
    M2G4RTPConfig,
    RTPDataset,
    RTPRequest,
    RTPService,
    SyntheticWorld,
    Trainer,
    TrainerConfig,
)
from repro.data import DynamicDaySimulator
from repro.metrics import kendall_rank_correlation, mae


def main():
    world = SyntheticWorld(GeneratorConfig(
        num_aois=60, num_couriers=6, num_days=10, seed=77))
    dataset = RTPDataset(world.generate()).filter_paper_scope()
    train, validation, _ = dataset.split_by_day()

    print("training the model behind the service ...")
    model = M2G4RTP(M2G4RTPConfig(seed=2))
    Trainer(model, TrainerConfig(epochs=10, patience=4)).fit(train, validation)
    service = RTPService(model)

    simulator = DynamicDaySimulator(world, courier_index=0,
                                    initial_orders=7, arrival_batches=3,
                                    orders_per_batch=3, seed=5)
    day = simulator.simulate()
    print(f"\nsimulated day with {len(day)} re-plan events "
          f"({day.event_kinds.count('arrival')} order arrivals, "
          f"{day.event_kinds.count('pickup')} pickups)\n")

    print(f"{'event':>8s} {'clock':>7s} {'orders':>7s} "
          f"{'KRC':>6s} {'ETA MAE':>8s} {'latency':>8s}")
    krcs, maes = [], []
    for snapshot, kind in zip(day.snapshots, day.event_kinds):
        response = service.handle(RTPRequest.from_instance(snapshot))
        krc = kendall_rank_correlation(response.route, snapshot.route)
        eta_mae = mae(response.eta_minutes, snapshot.arrival_times)
        krcs.append(krc)
        maes.append(eta_mae)
        print(f"{kind:>8s} {snapshot.request_time:7.0f} "
              f"{snapshot.num_locations:7d} {krc:6.2f} {eta_mae:8.2f} "
              f"{response.latency_ms:6.1f}ms")

    print(f"\nday summary: mean KRC {np.mean(krcs):.2f}, "
          f"mean ETA MAE {np.mean(maes):.2f} min over "
          f"{service.queries_served} queries")


if __name__ == "__main__":
    main()
