"""Diurnal arrival profiles and the sharded load scenarios.

* :func:`~repro.load.diurnal_rate` is a well-behaved sine profile:
  correct period/amplitude, mean rate ≈ base, and it rejects shapes
  that would stall the schedule (rate touching zero);
* profiled arrival schedules are deterministic and denser at the peak
  than the trough, while constant-rate phases keep the original
  bit-exact ``index / rate`` arithmetic;
* the ``shard_soak`` / ``shard_kill`` scenarios are deterministic under
  the virtual clock: same artifact twice at a fixed seed, schema-valid,
  reconciled against both the global and per-shard metric series, with
  the pinned shed / kill / respawn event sequence.
"""

import copy

import pytest

from repro.load import (LoadPhase, LoadRunConfig, diurnal_rate,
                        reconcile_shards, reconcile_with_registry,
                        run_scenario, validate_artifact)


# ----------------------------------------------------------------------
# diurnal_rate
# ----------------------------------------------------------------------
class TestDiurnalRate:
    def test_shape(self):
        rate = diurnal_rate(40.0, amplitude=0.5, period_s=60.0)
        assert rate(0.0) == pytest.approx(40.0)
        assert rate(15.0) == pytest.approx(60.0)    # peak at T/4
        assert rate(45.0) == pytest.approx(20.0)    # trough at 3T/4
        assert rate(60.0) == pytest.approx(40.0)    # periodic

    def test_phase_offset(self):
        import math

        rate = diurnal_rate(40.0, amplitude=0.5, period_s=60.0,
                            phase_rad=math.pi / 2.0)
        assert rate(0.0) == pytest.approx(60.0)     # starts at the peak

    def test_mean_is_base(self):
        rate = diurnal_rate(40.0, amplitude=0.9, period_s=10.0)
        samples = [rate(t * 0.01) for t in range(1000)]
        assert sum(samples) / len(samples) == pytest.approx(40.0, rel=1e-3)

    @pytest.mark.parametrize("kwargs", [
        dict(amplitude=1.0),       # rate would touch zero
        dict(amplitude=-0.1),
        dict(period_s=0.0),
    ])
    def test_rejects_degenerate_profiles(self, kwargs):
        with pytest.raises(ValueError):
            diurnal_rate(40.0, **kwargs)


# ----------------------------------------------------------------------
# Profiled arrival schedules
# ----------------------------------------------------------------------
class TestProfiledSchedule:
    def test_constant_phase_keeps_streaming_schedule(self):
        phase = LoadPhase("steady", duration_s=2.0, rate=40.0)
        assert phase.arrival_offsets() is None      # bit-exact old path
        assert phase.profile_name == "constant"
        assert phase.num_requests == 80

    def test_profiled_offsets_deterministic_and_monotonic(self):
        profile = diurnal_rate(40.0, amplitude=0.6, period_s=2.0)
        phase = LoadPhase("diurnal", duration_s=2.0, rate=40.0,
                          rate_profile=profile)
        assert phase.profile_name == "profiled"
        offsets = phase.arrival_offsets()
        assert offsets == phase.arrival_offsets()
        assert offsets[0] == 0.0
        assert all(b > a for a, b in zip(offsets, offsets[1:]))
        assert offsets[-1] < 2.0

    def test_peak_denser_than_trough(self):
        profile = diurnal_rate(40.0, amplitude=0.6, period_s=4.0)
        phase = LoadPhase("diurnal", duration_s=4.0, rate=40.0,
                          rate_profile=profile)
        offsets = phase.arrival_offsets()
        peak = sum(1 for t in offsets if 0.5 <= t < 1.5)     # around T/4
        trough = sum(1 for t in offsets if 2.5 <= t < 3.5)   # around 3T/4
        assert peak > 1.5 * trough

    def test_zero_rate_profile_rejected_at_schedule_time(self):
        phase = LoadPhase("bad", duration_s=1.0, rate=10.0,
                          rate_profile=lambda t: 10.0 - 20.0 * t)
        with pytest.raises(ValueError, match="must stay positive"):
            phase.arrival_offsets()


# ----------------------------------------------------------------------
# Sharded scenarios under the virtual clock
# ----------------------------------------------------------------------
def smoke_config(**overrides) -> LoadRunConfig:
    settings = dict(phase_duration_s=1.0, virtual=True, seed=0)
    settings.update(overrides)
    return LoadRunConfig(**settings)


@pytest.mark.parametrize("name", ["shard_soak", "shard_kill"])
class TestShardScenarios:
    def test_deterministic_valid_and_reconciled(self, name):
        first = run_scenario(name, smoke_config())
        second = run_scenario(name, smoke_config())
        validate_artifact(first.artifact)
        reconcile_with_registry(first.artifact, first.context.metrics)
        reconcile_shards(first.artifact, first.context.metrics)
        assert first.artifact == second.artifact, (
            "virtual-clock shard scenarios must be bit-reproducible")

    def test_seed_changes_artifact(self, name):
        base = run_scenario(name, smoke_config())
        other = run_scenario(name, smoke_config(seed=1))
        assert base.artifact["totals"] != other.artifact["totals"] or \
            base.artifact["slo"]["p99_ms"] != other.artifact["slo"]["p99_ms"]


class TestShardSoakOutcome:
    @pytest.fixture(scope="class")
    def result(self):
        return run_scenario("shard_soak", smoke_config())

    def test_diurnal_phase_recorded_and_sheds(self, result):
        phases = {p["name"]: p for p in result.artifact["phases"]}
        assert phases["diurnal"]["rate_profile"] == "diurnal"
        assert "rate_profile" not in phases["steady"], (
            "constant phases must keep the original artifact bytes")
        assert phases["diurnal"]["degraded"]["by_reason"].get("shed", 0) > 0
        assert phases["steady"]["degraded"]["total"] == 0

    def test_shed_event_pinned_to_diurnal_phase(self, result):
        events = [(e["phase"], e["event"])
                  for e in result.artifact["events"]]
        assert ("setup", "shards_started") in events
        assert ("diurnal", "shard_shed") in events

    def test_per_shard_block_reconciles(self, result):
        shards = result.artifact["shards"]
        assert [s["shard"] for s in shards] == list(range(len(shards)))
        assert len(shards) >= 2
        totals = result.artifact["totals"]
        assert (sum(s["requests"] for s in shards)
                + sum(s["shed"] for s in shards)) == totals["requests"]
        assert result.passed


class TestShardKillOutcome:
    @pytest.fixture(scope="class")
    def result(self):
        return run_scenario("shard_kill", smoke_config())

    def test_kill_and_respawn_events_in_order(self, result):
        events = [(e["phase"], e["event"])
                  for e in result.artifact["events"]]
        killed = events.index(("kill", "shard_killed"))
        respawned = events.index(("kill", "shard_respawned"))
        assert killed < respawned

    def test_respawn_counted_and_slo_green(self, result):
        shards = result.artifact["shards"]
        assert sum(s["respawns"] for s in shards) == 1
        assert result.passed
        assert result.artifact["totals"]["degraded"] == 0

    def test_respawn_is_deterministic(self, result):
        again = run_scenario("shard_kill", smoke_config())
        assert again.artifact["shards"] == result.artifact["shards"]


class TestShardCount:
    def test_num_shards_flows_into_scenario(self):
        result = run_scenario("shard_soak", smoke_config(num_shards=3))
        assert len(result.artifact["shards"]) == 3
        assert result.artifact["config"]["num_shards"] == 3

    def test_artifact_copy_safety(self):
        """The artifact is plain data — deep-copyable, no live objects."""
        result = run_scenario("shard_soak", smoke_config())
        clone = copy.deepcopy(result.artifact)
        assert clone == result.artifact
