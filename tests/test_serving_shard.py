"""Sharded serving tier: placement, admission, isolation, swap, respawn.

The properties that make :mod:`repro.serving_shard` trustworthy:

* placement is a pure function of courier identity — stable across
  router instances and process boundaries (sha256, never ``hash()``);
* admission control sheds at the per-shard depth bound through the
  degraded fallback path, never with an error;
* two shards never share mutable serving state: each runtime owns its
  workspace (no kernel scratch aliasing), graph cache and batcher, and
  process workers rebuild everything post-fork from plain spec data;
* hot swap and canary stop/promote are *drains* — every in-flight
  request is answered by a coherent installed version, versions are
  FIFO-monotonic per shard, and nothing is dropped;
* a killed worker is respawned (from current weights) and outstanding
  work resubmitted — the caller just sees answers.
"""

import dataclasses
import pickle
import threading

import numpy as np
import pytest

from repro.core import M2G4RTP, M2G4RTPConfig
from repro.obs import disable_tracing, enable_tracing
from repro.service import RTPRequest
from repro.serving_shard import (ShardConfig, ShardRouter, ShardRuntime,
                                 SleepLatencyService, build_model)


def tiny_model(seed: int = 3) -> M2G4RTP:
    model = M2G4RTP(M2G4RTPConfig(
        hidden_dim=16, num_heads=2, num_encoder_layers=1,
        continuous_embed_dim=8, discrete_embed_dim=4, position_dim=4,
        courier_embed_dim=4, seed=seed))
    model.eval()
    return model


@pytest.fixture(scope="module")
def requests(dataset):
    instances = list(dataset)
    return [RTPRequest.from_instance(instances[i % len(instances)])
            for i in range(24)]


def make_router(num_shards=2, **kwargs) -> ShardRouter:
    kwargs.setdefault("inline", True)
    config = kwargs.pop("config", None) or ShardConfig(num_shards=num_shards)
    return ShardRouter(tiny_model(), version="v001", config=config, **kwargs)


def assert_valid(response, request):
    assert (sorted(int(i) for i in response.route)
            == list(range(request.num_locations)))
    assert len(response.eta_minutes) == request.num_locations
    assert np.all(np.isfinite(response.eta_minutes))


# ----------------------------------------------------------------------
# Placement
# ----------------------------------------------------------------------
class TestPlacement:
    def test_consistent_across_router_instances(self, requests):
        a = make_router(num_shards=3)
        b = make_router(num_shards=3)
        for request in requests:
            assert a.place(request) == b.place(request)
            assert 0 <= a.place(request) < 3

    def test_same_courier_same_shard(self, requests):
        router = make_router(num_shards=4)
        by_courier = {}
        for request in requests:
            shard = router.place(request)
            previous = by_courier.setdefault(request.courier.courier_id,
                                             shard)
            assert previous == shard

    def test_known_pinned_values(self, requests):
        """sha256 placement must never drift (a resharding event)."""
        import hashlib

        router = make_router(num_shards=2)
        for request in requests[:4]:
            cid = int(request.courier.courier_id)
            digest = hashlib.sha256(
                cid.to_bytes(8, "little", signed=True)).digest()
            assert router.place(request) == int.from_bytes(
                digest[:8], "big") % 2


# ----------------------------------------------------------------------
# Inline serving + admission control
# ----------------------------------------------------------------------
class TestInlineServing:
    def test_round_trip_and_version_stamp(self, requests):
        router = make_router(num_shards=2)
        for request in requests[:8]:
            response = router.handle(request)
            assert_valid(response, request)
            assert response.model_version == "v001"
            assert not response.degraded

    def test_admission_sheds_via_fallback(self, requests):
        class Backlog:
            pending = 10_000

        router = make_router(num_shards=2, backlog_probe=Backlog())
        response = router.handle(requests[0])
        assert_valid(response, requests[0])   # degraded, never an error
        assert response.degraded and response.degraded_reason == "shed"
        stats = router.shard_stats()
        assert sum(s["shed"] for s in stats) == 1
        assert sum(s["requests"] for s in stats) == 0

    def test_shed_callback_fires(self, requests):
        class Backlog:
            pending = 10_000

        shed_shards = []
        router = make_router(num_shards=2, backlog_probe=Backlog(),
                             on_shed=shed_shards.append)
        router.handle(requests[0])
        assert shed_shards == [router.place(requests[0])]


# ----------------------------------------------------------------------
# Isolation (satellite: no fork sharing, no workspace aliasing)
# ----------------------------------------------------------------------
class TestShardIsolation:
    def test_inline_shards_never_alias_workspace_buffers(self, requests):
        router = make_router(num_shards=2)
        served = [0, 0]
        for request in requests:
            served[router.place(request)] += 1
            router.handle(request)
        assert all(served), "pool must exercise both shards"
        ws0 = router.runtimes[0].workspace
        ws1 = router.runtimes[1].workspace
        assert ws0 is not ws1
        assert len(ws0) > 0 and len(ws1) > 0, (
            "serving must draw kernel scratch from the shard workspace")
        for a in ws0._buffers.values():
            for b in ws1._buffers.values():
                assert not np.shares_memory(a, b)

    def test_inline_shards_own_caches_and_batchers(self, requests):
        router = make_router(num_shards=2)
        lanes = [runtime.primary for runtime in router.runtimes]
        assert lanes[0].service is not lanes[1].service
        assert lanes[0].service.cache is not lanes[1].service.cache
        assert lanes[0].batcher is not lanes[1].batcher

    def test_spec_is_plain_data(self):
        """The worker spec must cross fork as pickled values — no live
        model, cache or workspace objects smuggled through."""
        router = make_router(num_shards=1)
        spec = router._spec()
        rebuilt = pickle.loads(pickle.dumps(spec))
        assert rebuilt["version"] == "v001"
        model = build_model(rebuilt["model_config"], rebuilt["state"])
        assert isinstance(model, M2G4RTP)

    def test_runtime_rebuild_matches_original_outputs(self, requests):
        router = make_router(num_shards=1)
        spec = pickle.loads(pickle.dumps(router._spec()))
        runtime = ShardRuntime(0, spec["model_config"], spec["state"],
                               spec["version"])
        [(kind, _shard, _req, response, _spans)] = runtime.process(
            ("request", 0, requests[0], "primary", None))
        assert kind == "response"
        direct = router.handle(requests[0])
        np.testing.assert_allclose(response.eta_minutes,
                                   direct.eta_minutes, rtol=1e-9)
        assert list(response.route) == list(direct.route)


# ----------------------------------------------------------------------
# Hot swap / canary (inline: deterministic drain semantics)
# ----------------------------------------------------------------------
class TestInlineSwap:
    def test_swap_to_changes_stamp_everywhere(self, requests):
        router = make_router(num_shards=2)
        before = router.handle(requests[0])
        assert before.model_version == "v001"
        router.swap_to("v002", tiny_model(seed=9))
        for request in requests[:6]:
            assert router.handle(request).model_version == "v002"
        assert all(s["swaps"] == 1 for s in router.shard_stats())

    def test_canary_split_then_promote(self, requests):
        router = make_router(num_shards=2,
                             config=ShardConfig(num_shards=2, seed=4))
        router.start_canary("v002", tiny_model(seed=9), fraction=0.5)
        versions = {router.handle(request).model_version
                    for request in requests}
        assert versions == {"v001", "v002"}
        router.stop_canary(promote=True)
        assert router.version == "v002"
        assert {router.handle(r).model_version
                for r in requests[:6]} == {"v002"}

    def test_canary_rollback_restores_primary(self, requests):
        router = make_router(num_shards=2)
        router.start_canary("v002", tiny_model(seed=9), fraction=1.0)
        assert router.handle(requests[0]).model_version == "v002"
        router.stop_canary(promote=False)
        assert router.version == "v001"
        assert router.handle(requests[0]).model_version == "v001"

    def test_inline_kill_respawns_from_current_version(self, requests):
        router = make_router(num_shards=2)
        router.swap_to("v002", tiny_model(seed=9))
        victim = router.place(requests[0])
        router.kill_shard(victim)
        respawned = []
        router.on_respawn = respawned.append
        response = router.handle(requests[0])
        assert_valid(response, requests[0])
        assert response.model_version == "v002", (
            "respawn must rebuild from the *current* weights, not v001")
        assert respawned == [victim]
        assert router.shard_stats()[victim]["respawns"] == 1


# ----------------------------------------------------------------------
# Regime-matched routing (model-zoo lanes)
# ----------------------------------------------------------------------
def _with_weather(requests, weather):
    return [dataclasses.replace(r, weather=weather) for r in requests]


class TestRegimeLanes:
    def test_regime_requests_serve_from_their_lane(self, requests):
        router = make_router(num_shards=2)
        router.install_regime("weather:storm", "v-storm",
                              tiny_model(seed=7))
        assert router.regime_versions() == {"weather:storm": "v-storm"}
        for request in _with_weather(requests[:6], weather=3):
            response = router.handle(request)
            assert_valid(response, request)
            assert response.model_version == "v-storm"
        for request in _with_weather(requests[6:12], weather=0):
            assert router.handle(request).model_version == "v001"

    def test_lane_matching_primary_version_defers_to_primary(self, requests):
        """When the primary *is* the regime model, the lane stays dark;
        once the primary moves on, the lane serves the old regime."""
        router = make_router(num_shards=2)
        router.install_regime("weather:storm", "v001", tiny_model(seed=7))
        storm = _with_weather(requests[:4], weather=3)
        assert {router.handle(r).model_version for r in storm} == {"v001"}
        router.swap_to("v002", tiny_model(seed=9))
        assert {router.handle(r).model_version for r in storm} == {"v001"}
        assert {router.handle(r).model_version
                for r in _with_weather(requests[4:8], 0)} == {"v002"}

    def test_clear_regime_restores_primary_routing(self, requests):
        router = make_router(num_shards=2)
        router.install_regime("weather:storm", "v-storm",
                              tiny_model(seed=7))
        storm = _with_weather(requests[:4], weather=3)
        assert router.handle(storm[0]).model_version == "v-storm"
        assert router.clear_regime("weather:storm") is True
        assert {router.handle(r).model_version for r in storm} == {"v001"}
        assert router.clear_regime("weather:storm") is False
        assert router.regime_versions() == {}

    def test_canary_owns_its_split_before_regime_routing(self, requests):
        router = make_router(num_shards=2)
        router.install_regime("weather:storm", "v-storm",
                              tiny_model(seed=7))
        router.start_canary("v002", tiny_model(seed=9), fraction=1.0)
        storm = _with_weather(requests[:4], weather=3)
        assert {router.handle(r).model_version for r in storm} == {"v002"}
        router.stop_canary(promote=False)
        assert {router.handle(r).model_version for r in storm} == {"v-storm"}

    def test_respawn_reinstalls_regime_lane(self, requests):
        router = make_router(num_shards=2)
        router.install_regime("weather:storm", "v-storm",
                              tiny_model(seed=7))
        storm = _with_weather(requests, weather=3)
        victim = router.place(storm[0])
        router.kill_shard(victim)
        response = router.handle(storm[0])
        assert_valid(response, storm[0])
        assert response.model_version == "v-storm", (
            "respawn must replay the regime spec, like the canary")
        assert router.shard_stats()[victim]["respawns"] == 1


# ----------------------------------------------------------------------
# Span stitching
# ----------------------------------------------------------------------
class TestSpanStitching:
    def test_worker_spans_nest_under_route_span(self, requests):
        collector = enable_tracing()
        try:
            router = make_router(num_shards=2)
            router.handle(requests[0])
        finally:
            disable_tracing()
        roots = collector.roots
        assert len(roots) == 1
        root = roots[0]
        assert root.name == "shard.route"
        child_names = [c.name for c in root.children]
        assert "shard.serve" in child_names
        serve = root.children[child_names.index("shard.serve")]
        assert serve.trace_id == root.trace_id, (
            "worker spans must be stitched into the router's trace")


# ----------------------------------------------------------------------
# Process mode (real workers; small but end-to-end)
# ----------------------------------------------------------------------
class TestProcessMode:
    def test_round_trip_kill_respawn_and_swap_drain(self, requests):
        router = ShardRouter(tiny_model(), version="v001",
                             config=ShardConfig(num_shards=2), inline=False)
        try:
            parent_pid = __import__("os").getpid()
            pids = {s["pid"] for s in router.worker_stats()}
            assert len(pids) == 2 and parent_pid not in pids, (
                "every shard must serve from its own process")

            for request in requests[:4]:
                response = router.handle(request)
                assert_valid(response, request)
                assert response.model_version == "v001"

            # Pipelined stream with a swap in the middle: versions must
            # be coherent and FIFO-monotonic per shard, nothing dropped.
            tickets = []
            for i, request in enumerate(requests):
                if i == len(requests) // 2:
                    router.swap_to("v002", tiny_model(seed=9))
                tickets.append((router.place(request),
                                router.submit(request)))
            responses = router.wait_all([t for _, t in tickets])
            seen = {}
            for (shard, _), response in zip(tickets, responses):
                assert response.model_version in ("v001", "v002")
                if seen.get(shard) == "v002":
                    assert response.model_version == "v002", (
                        "a shard must never step back to the old "
                        "version after the swap drained")
                seen[shard] = response.model_version
            assert set(seen.values()) == {"v002"}

            victim = router.place(requests[0])
            router.kill_shard(victim)
            response = router.handle(requests[0])
            assert_valid(response, requests[0])
            assert response.model_version == "v002"
            assert router.shard_stats()[victim]["respawns"] == 1
            assert sorted(router.alive_shards()) == [0, 1]
        finally:
            router.shutdown()

    def test_sleep_latency_spec_reaches_workers(self, requests):
        router = ShardRouter(
            tiny_model(), version="v001",
            config=ShardConfig(num_shards=1, sleep_latency_ms=5.0),
            inline=False)
        try:
            import time

            start = time.perf_counter()
            router.handle(requests[0])
            assert (time.perf_counter() - start) >= 0.004
        finally:
            router.shutdown()


# ----------------------------------------------------------------------
# SleepLatencyService unit behaviour
# ----------------------------------------------------------------------
class TestSleepLatencyService:
    def test_one_charge_per_batch_and_delegation(self):
        sleeps = []

        class Inner:
            def handle(self, request):
                return ("one", request)

            def handle_batch(self, batch):
                return [("many", r) for r in batch]

            extra = "passthrough"

        service = SleepLatencyService(Inner(), base_ms=10.0, seed=1,
                                      sleeper=sleeps.append)
        assert service.handle("a") == ("one", "a")
        assert service.handle_batch(["b", "c"]) == [("many", "b"),
                                                    ("many", "c")]
        assert len(sleeps) == 2, "one modeled cost per call, not per item"
        assert all(s > 0 for s in sleeps)
        assert service.extra == "passthrough"

    def test_seeded_costs_reproducible(self):
        def costs(seed):
            sleeps = []

            class Inner:
                def handle(self, request):
                    return request

            service = SleepLatencyService(Inner(), base_ms=10.0, seed=seed,
                                          sleeper=sleeps.append)
            for _ in range(5):
                service.handle(None)
            return sleeps

        assert costs(3) == costs(3)
        assert costs(3) != costs(4)


# ----------------------------------------------------------------------
# Config validation
# ----------------------------------------------------------------------
class TestShardConfig:
    @pytest.mark.parametrize("kwargs", [
        dict(num_shards=0),
        dict(max_queue_depth=0),
        dict(max_respawns=-1),
    ])
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            ShardConfig(**kwargs)
