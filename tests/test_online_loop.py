"""The online continual-learning loop (``repro.online``), end to end.

Covers the acceptance arc of the subsystem:

* the ``continual_drift`` scenario runs shift → drift alarm →
  fine-tune → lineage-tagged registration → canary → quality-gated
  promotion, bit-reproducibly across two same-seed runs, and the
  promoted student's windowed ETA MAE beats the frozen parent's;
* a fine-tune fed poisoned ground truth is registered (for the audit
  trail) but blocked by the anti-regression gate — it never canaries
  and the active version never changes;
* an :class:`~repro.online.OnlineTrainer` job killed mid-flight and
  re-run with the same ``job_id`` finishes **bitwise identical** to an
  uninterrupted run (model weights and Adam moments), and the
  experience buffer snapshot/restore round-trips exactly;
* :class:`~repro.online.RetrainPolicy` hysteresis: a flapping detector
  cannot cause a retrain storm (cooldown, fresh-sample minimum,
  post-alarm arming), and watermark/schedule triggers stay subordinate
  to drift;
* the experience buffer is bounded: overflow drops are counted in
  ``rtp_online_dropped_routes_total`` instead of blocking serving;
* the ``--closed-loop`` comparison mode hides the overload queueing the
  open-loop driver reports (coordinated omission, quantified);
* weather-coupled service slowdown inflates storm costs without
  perturbing the RNG stream of clear-weather runs.
"""

import dataclasses
import json

import numpy as np
import pytest

from repro.data import GeneratorConfig, SyntheticWorld
from repro.deploy import DeploymentController, ModelRegistry, RolloutPolicy
from repro.load import (LoadRunConfig, ModeledLatencyService, VirtualClock,
                        run_scenario, validate_artifact)
from repro.load.clock import WEATHER_SERVICE_SLOWDOWN
from repro.load.scenarios import small_model
from repro.load.stream import RequestStream, build_instance_pool
from repro.obs import disable_tracing
from repro.obs.metrics import MetricsRegistry
from repro.obs.quality import (CompletedRoute, PageHinkleyDetector,
                               QualityMonitor, ReferenceWindowDetector)
from repro.online import (AntiRegressionGate, ExperienceBuffer, GateConfig,
                          OnlineLoop, OnlineLoopConfig, OnlineTrainer,
                          OnlineTrainerConfig, RetrainPolicy,
                          RetrainPolicyConfig, load_loop_state)

SMOKE = dict(phase_duration_s=1.0, virtual=True, seed=0)


@pytest.fixture(autouse=True)
def _tracing_off():
    disable_tracing()
    yield
    disable_tracing()


@pytest.fixture(scope="module")
def drift_result(tmp_path_factory):
    # A persistent registry dir so the tests can inspect manifests and
    # loop state after the run (the default tempdir is deleted).
    registry_dir = tmp_path_factory.mktemp("drift-registry")
    return run_scenario("continual_drift", LoadRunConfig(**SMOKE),
                        registry_dir=registry_dir)


def _world_pool(pool_size=24):
    world = SyntheticWorld(GeneratorConfig(
        num_aois=40, num_couriers=6, num_days=4,
        instances_per_courier_day=2, seed=7))
    return build_instance_pool(world, pool_size, seed=8)


class TestContinualDriftScenario:
    def test_pinned_event_arc(self, drift_result):
        artifact = drift_result.artifact
        validate_artifact(artifact)
        events = [e["event"] for e in artifact["events"]]
        cursor = -1
        for needed in ("label_shift", "drift_alarm",
                       "online_retrain_started",
                       "online_candidate_registered",
                       "online_canary_started"):
            assert needed in events, f"missing {needed!r}: {events}"
            assert events.index(needed) > cursor
            cursor = events.index(needed)
        # Hysteresis holds under a still-alarming stream: exactly one
        # retrain, exactly one canary.
        assert events.count("online_retrain_started") == 1
        assert events.count("online_canary_started") == 1
        assert "online_candidate_rejected" not in events

    def test_student_promoted_on_quality_verdict(self, drift_result):
        artifact = drift_result.artifact
        decisions = artifact["decisions"]
        assert [d["action"] for d in decisions] == ["promote"]
        assert decisions[0]["reason"].startswith("quality:")
        controller = drift_result.context.controller
        assert controller.active_version == decisions[0]["version"]

    def test_candidate_lineage_in_registry(self, drift_result):
        context = drift_result.context
        candidate = context.online.candidates[0]
        manifest = context.registry.manifest(str(candidate["version"]))
        lineage = json.loads(manifest.notes)
        assert lineage["parent"] == candidate["parent"]
        assert lineage["trigger"] == "drift"
        assert lineage["gate_passed"] is True
        assert lineage["train_samples"] >= 16
        assert lineage["holdout_samples"] >= 4
        span_lo, span_hi = lineage["window_span"]
        assert 0 <= span_lo < span_hi
        assert manifest.metrics["gate_mae_ratio"] < 0.5
        assert manifest.created_at.startswith("online-ft000-of-")

    def test_student_beats_frozen_parent_on_shifted_stream(
            self, drift_result):
        by_version = drift_result.artifact["quality"]["segments"][
            "model_version"]
        parent, student = sorted(by_version)
        assert by_version[student]["eta_mae"] \
            < 0.5 * by_version[parent]["eta_mae"]
        # Post-promotion the student serves the adapted phase alone.
        assert by_version[student]["routes"] > 0

    def test_serving_slo_stays_green(self, drift_result):
        artifact = drift_result.artifact
        assert artifact["slo"]["passed"]
        assert artifact["totals"]["invalid_responses"] == 0

    def test_online_metrics_exported(self, drift_result):
        metrics = drift_result.context.metrics
        assert metrics.counter("rtp_online_retrains_total",
                               labels=("trigger",)).labels(
            trigger="drift").value == 1
        assert metrics.counter("rtp_online_candidates_total",
                               labels=("outcome",)).labels(
            outcome="canaried").value == 1
        assert metrics.counter("rtp_online_ingested_total").value > 0
        assert metrics.counter("rtp_online_dropped_routes_total").value == 0

    def test_loop_state_persisted(self, drift_result):
        registry = drift_result.context.registry
        state = load_loop_state(registry.root / "online_jobs")
        assert state is not None
        assert state["retrains"] == 1
        assert len(state["candidates"]) == 1

    def test_bit_reproducible_across_runs(self, drift_result):
        again = run_scenario("continual_drift", LoadRunConfig(**SMOKE))
        assert json.dumps(again.artifact, sort_keys=True) \
            == json.dumps(drift_result.artifact, sort_keys=True)


class _FeedbackHarness:
    """Minimal serve→quality→loop pump shared by the gate tests."""

    def __init__(self, tmp_path, gate=None):
        self.metrics = MetricsRegistry()
        self.registry = ModelRegistry(tmp_path / "reg")
        parent = small_model(17, 16)
        manifest = self.registry.register(parent, created_at="t0")
        self.registry.activate(manifest.version)
        self.parent_version = manifest.version
        self.controller = DeploymentController(
            self.registry, metrics=self.metrics, initial=manifest.version,
            seed=5,
            policy=RolloutPolicy(canary_fraction=0.5, min_requests=10,
                                 max_quality_mae_ratio=0.95,
                                 min_quality_routes=8))
        self.monitor = QualityMonitor(
            self.metrics, window=32,
            page_hinkley=PageHinkleyDetector(delta=20.0, threshold=240.0,
                                             min_samples=8),
            reference_window=ReferenceWindowDetector(24, 12, 0.75, 3.0))
        self.events = []
        self.loop = OnlineLoop(
            self.registry, self.controller,
            ExperienceBuffer(capacity=48, reservoir=16, max_pending=64,
                             seed=3, metrics=self.metrics),
            # Replay-enabled fine-tunes, mirroring the scenario wiring:
            # the mixture gate scores the clean holdout too, and a
            # no-replay fine-tune forgets the clean regime and fails it.
            OnlineTrainer(self.registry, tmp_path / "jobs",
                          OnlineTrainerConfig(replay_fraction=1.0,
                                              learning_rate=0.012,
                                              epochs=10),
                          metrics=self.metrics),
            RetrainPolicy(RetrainPolicyConfig(
                min_window=24, cooldown_s=1e9, min_new_samples=8,
                post_alarm_samples=28)),
            gate or AntiRegressionGate(),
            OnlineLoopConfig(train_window=32, holdout_every=4),
            metrics=self.metrics,
            on_event=lambda e, d: self.events.append(e))
        self.loop.attach(self.monitor)
        self.controller.primary.attach_feedback(self.loop)
        self.stream = RequestStream(_world_pool(), seed=9)

    def pump(self, count, mutate_actual=None):
        for _ in range(count):
            request = self.stream.next()
            instance = self.stream.last_instance
            response = self.controller.handle(request)
            actual = np.asarray(instance.arrival_times, dtype=float)
            route = list(instance.route)
            if mutate_actual is not None:
                actual, route = mutate_actual(actual, route)
            self.monitor.record(CompletedRoute(
                predicted_route=response.route,
                actual_route=route,
                predicted_eta_minutes=response.eta_minutes,
                actual_arrival_minutes=actual,
                labels={"model_version": response.model_version}))
            self.controller.primary.complete_route(
                request, response, route, actual)
            self.loop.tick()
            if self.loop.retrains:
                return


class TestPoisonedFineTuneBlocked:
    def test_gate_rejects_poisoned_labels(self, tmp_path):
        harness = _FeedbackHarness(tmp_path)
        # Clean traffic fills the reference window and — by overflowing
        # the window — seeds the pre-shift reservoir the replay and the
        # gate's frozen clean slice both draw from.
        harness.pump(72)
        assert harness.loop.retrains == 0

        # Corrupted ground truth: uniform-noise arrivals, shuffled
        # "actual" routes.  Plenty to alarm on — and nothing learnable.
        poison_rng = np.random.default_rng(23)

        def poison(actual, route):
            noisy = poison_rng.uniform(2000.0, 10000.0, size=len(actual))
            shuffled = list(poison_rng.permutation(route))
            return np.sort(noisy), shuffled

        harness.pump(80, mutate_actual=poison)
        assert harness.loop.retrains == 1, \
            "the poisoned stream must still alarm and trigger a retrain"

        record = harness.loop.candidates[0]
        assert record["canaried"] is False
        assert record["gate"]["passed"] is False
        # Registered for the audit trail, never promoted.
        assert record["version"] in harness.registry.versions()
        assert "online_candidate_rejected" in harness.events
        assert "online_canary_started" not in harness.events
        assert harness.controller.active_version == harness.parent_version
        assert harness.controller.candidate is None
        assert [d.action for d in harness.controller.decisions] == []
        lineage = json.loads(
            harness.registry.manifest(str(record["version"])).notes)
        assert lineage["gate_passed"] is False
        rejected = harness.metrics.counter(
            "rtp_online_candidates_total", labels=("outcome",)).labels(
            outcome="rejected")
        assert rejected.value == 1

    def test_inseparable_shift_rejected_as_forgetting(self, tmp_path):
        # A flat +480 on *every* route is inseparable in features: no
        # student can fit the shifted window without unlearning the
        # clean regime (the replay sample and the shifted majority pull
        # the same inputs toward conflicting targets).  The candidate
        # wins the drift leg decisively — and the mixture gate still
        # rejects it, for forgetting, not for drift.  The separable
        # (weather-conditioned) shift that passes both legs is the
        # ``continual_drift`` scenario above.
        harness = _FeedbackHarness(tmp_path)
        harness.pump(72)

        def shift(actual, route):
            return actual + 480.0, route

        harness.pump(80, mutate_actual=shift)
        assert harness.loop.retrains == 1
        record = harness.loop.candidates[0]
        gate = record["gate"]
        assert gate["passed"] is False
        assert gate["reason"].startswith("forgetting:")
        assert gate["mae_ratio"] < 0.5, \
            "the drift leg alone would have shipped this candidate"
        assert gate["clean_mae_ratio"] > gate["clean_threshold"]
        assert record["canaried"] is False
        assert record["replay_samples"] > 0
        # Registered for the audit trail, active version untouched.
        assert record["version"] in harness.registry.versions()
        assert harness.controller.active_version == harness.parent_version


class TestOnlineTrainerResume:
    def _setup(self, tmp_path, subdir):
        registry = ModelRegistry(tmp_path / subdir / "reg")
        parent = small_model(17, 16)
        manifest = registry.register(parent, created_at="t0")
        instances = _world_pool()
        trainer = OnlineTrainer(registry, tmp_path / subdir / "jobs",
                                OnlineTrainerConfig())
        return trainer, manifest.version, instances

    def test_kill_restart_resume_is_bitwise(self, tmp_path):
        trainer_a, parent, instances = self._setup(tmp_path, "a")
        full = trainer_a.fine_tune(parent, instances, job_id="job")
        assert full.completed and full.epochs_done == 4

        trainer_b, parent_b, instances_b = self._setup(tmp_path, "b")
        paused = trainer_b.fine_tune(parent_b, instances_b, job_id="job",
                                     stop_after_epoch=2)
        assert not paused.completed and paused.epochs_done == 2
        # A fresh trainer instance = a restarted process; only the
        # workdir files carry the job forward.
        trainer_c = OnlineTrainer(trainer_b.registry,
                                  trainer_b.workdir,
                                  OnlineTrainerConfig())
        resumed = trainer_c.fine_tune(parent_b, instances_b, job_id="job")
        assert resumed.completed and resumed.epochs_done == 4

        assert resumed.losses == full.losses
        for p_full, p_resumed in zip(full.model.parameters(),
                                     resumed.model.parameters()):
            assert np.array_equal(p_full.data, p_resumed.data)

    def test_completed_job_is_not_retrained(self, tmp_path):
        trainer, parent, instances = self._setup(tmp_path, "c")
        first = trainer.fine_tune(parent, instances, job_id="done")
        progress = json.loads(
            (trainer.workdir / "done.json").read_text())
        assert progress["completed"] is True
        # Re-running a *completed* job starts a fresh fine-tune (the
        # progress record only resumes unfinished jobs) and reproduces
        # the identical result from the same parent + data.
        again = trainer.fine_tune(parent, instances, job_id="done")
        assert again.losses[-len(first.losses):] == first.losses

    def test_buffer_snapshot_restore_roundtrip(self, tmp_path):
        buffer = ExperienceBuffer(capacity=8, reservoir=4, max_pending=64,
                                  seed=3)
        stream = RequestStream(_world_pool(), seed=9)
        for _ in range(20):
            request = stream.next()
            instance = stream.last_instance
            buffer.offer(request, instance.route,
                         np.asarray(instance.arrival_times, dtype=float))
        buffer.drain()
        path = buffer.snapshot(tmp_path / "buffer.pkl")

        restored = ExperienceBuffer(capacity=8, reservoir=4, max_pending=64,
                                    seed=3)
        restored.restore(path)
        assert restored.stats() == buffer.stats()
        assert restored.window_span() == buffer.window_span()
        before = buffer.training_set()
        after = restored.training_set()
        assert len(before) == len(after)
        for x, y in zip(before, after):
            assert x.seq == y.seq
            assert np.array_equal(x.labels, y.labels)
            assert np.array_equal(x.instance.arrival_times,
                                  y.instance.arrival_times)


class TestRetrainPolicyHysteresis:
    def test_flapping_detector_causes_no_retrain_storm(self):
        policy = RetrainPolicy(RetrainPolicyConfig(
            min_window=8, cooldown_s=60.0, min_new_samples=8,
            alarm_quorum=1))
        retrains = 0
        ingested = 0
        # A detector alarming every 4th route for 400 virtual seconds.
        for step in range(400):
            now = float(step)
            ingested += 1
            if step % 4 == 0:
                policy.note_alarm(object())
            trigger = policy.should_retrain(
                now, window_size=min(ingested, 32),
                total_ingested=ingested)
            if trigger is not None:
                retrains += 1
                policy.note_retrained(now, ingested)
        # 400 s / 60 s cooldown -> at most ceil(400/60) = 7 retrains
        # even though ~100 alarms fired.
        assert retrains <= 7
        assert policy.retrains == retrains

    def test_min_window_and_new_samples_gate(self):
        policy = RetrainPolicy(RetrainPolicyConfig(
            min_window=16, cooldown_s=0.0, min_new_samples=8))
        policy.note_alarm(object())
        assert policy.should_retrain(0.0, window_size=8,
                                     total_ingested=8) is None
        assert policy.should_retrain(1.0, window_size=16,
                                     total_ingested=16) is not None
        policy.note_retrained(1.0, 16)
        policy.note_alarm(object())
        # Alarms alone are not enough: the fine-tune needs fresh data.
        assert policy.should_retrain(2.0, window_size=16,
                                     total_ingested=20) is None
        assert policy.should_retrain(3.0, window_size=16,
                                     total_ingested=24) is not None

    def test_post_alarm_samples_arms_before_firing(self):
        policy = RetrainPolicy(RetrainPolicyConfig(
            min_window=4, cooldown_s=0.0, post_alarm_samples=10))
        policy.note_alarm(object())
        assert policy.should_retrain(0.0, window_size=8,
                                     total_ingested=20) is None
        assert policy.should_retrain(1.0, window_size=8,
                                     total_ingested=29) is None
        trigger = policy.should_retrain(2.0, window_size=8,
                                        total_ingested=30)
        assert trigger is not None and trigger.kind == "drift"

    def test_watermark_and_schedule_subordinate_to_drift(self):
        policy = RetrainPolicy(RetrainPolicyConfig(
            min_window=4, cooldown_s=0.0, min_new_samples=0,
            sample_watermark=50, schedule_interval_s=100.0))
        trigger = policy.should_retrain(0.0, window_size=8,
                                        total_ingested=10)
        assert trigger is not None and trigger.kind == "schedule"
        policy.note_retrained(0.0, 10)
        trigger = policy.should_retrain(50.0, window_size=8,
                                        total_ingested=70)
        assert trigger is not None and trigger.kind == "watermark"
        policy.note_retrained(50.0, 70)
        policy.note_alarm(object())
        trigger = policy.should_retrain(200.0, window_size=8,
                                        total_ingested=130)
        assert trigger is not None and trigger.kind == "drift"

    def test_alarm_quorum(self):
        policy = RetrainPolicy(RetrainPolicyConfig(
            min_window=4, cooldown_s=0.0, alarm_quorum=3))
        policy.note_alarm(object())
        policy.note_alarm(object())
        assert policy.should_retrain(0.0, window_size=8,
                                     total_ingested=8) is None
        policy.note_alarm(object())
        trigger = policy.should_retrain(1.0, window_size=8,
                                        total_ingested=8)
        assert trigger is not None and trigger.alarms == 3


class TestBufferBounding:
    def test_overflow_drops_are_counted_not_blocking(self):
        metrics = MetricsRegistry()
        buffer = ExperienceBuffer(capacity=8, reservoir=2, max_pending=4,
                                  seed=0, metrics=metrics)
        stream = RequestStream(_world_pool(), seed=9)
        accepted = 0
        for _ in range(10):
            request = stream.next()
            instance = stream.last_instance
            if buffer.offer(request, instance.route,
                            np.asarray(instance.arrival_times,
                                       dtype=float)):
                accepted += 1
        assert accepted == 4
        assert buffer.dropped == 6
        dropped = metrics.counter("rtp_online_dropped_routes_total")
        assert dropped.value == 6
        # Draining frees the pending lane again.
        assert len(buffer.drain()) == 4
        request = stream.next()
        assert buffer.offer(request, stream.last_instance.route,
                            np.asarray(stream.last_instance.arrival_times,
                                       dtype=float))

    def test_window_and_reservoir_stay_bounded(self):
        buffer = ExperienceBuffer(capacity=8, reservoir=4, max_pending=256,
                                  seed=0)
        stream = RequestStream(_world_pool(), seed=9)
        for _ in range(60):
            request = stream.next()
            instance = stream.last_instance
            buffer.offer(request, instance.route,
                         np.asarray(instance.arrival_times, dtype=float))
            buffer.drain()
        stats = buffer.stats()
        assert stats["window"] == 8
        assert stats["reservoir"] == 4
        assert stats["ingested"] == 60
        assert len(buffer.training_set()) <= 12


class TestClosedLoopComparison:
    def test_closed_loop_hides_the_overload_open_loop_reports(self):
        open_run = run_scenario("surge", LoadRunConfig(**SMOKE))
        closed_run = run_scenario(
            "surge", LoadRunConfig(closed_loop=True, **SMOKE))
        open_surge = [p for p in open_run.artifact["phases"]
                      if p["name"] == "surge"][0]
        closed_surge = [p for p in closed_run.artifact["phases"]
                        if p["name"] == "surge"][0]
        # Same scenario, same seed: the closed-loop generator reports a
        # calm p99 because it only issues as fast as responses return —
        # the backlog the open-loop schedule exposes never forms.
        assert open_surge["latency_ms"]["p99"] \
            > 3.0 * closed_surge["latency_ms"]["p99"]
        assert open_surge["max_backlog"] > 0
        assert closed_surge["max_backlog"] == 0
        assert closed_surge["loop"] == "closed"
        assert "loop" not in open_surge
        assert closed_run.artifact["config"]["closed_loop"] is True
        assert "closed_loop" not in open_run.artifact["config"]
        validate_artifact(closed_run.artifact)

    def test_closed_loop_is_deterministic(self):
        first = run_scenario("steady",
                             LoadRunConfig(closed_loop=True, **SMOKE))
        second = run_scenario("steady",
                              LoadRunConfig(closed_loop=True, **SMOKE))
        assert json.dumps(first.artifact, sort_keys=True) \
            == json.dumps(second.artifact, sort_keys=True)


class _EchoService:
    def handle(self, request):
        return request


@dataclasses.dataclass
class _WeatherRequest:
    weather: int


class TestWeatherCoupledSlowdown:
    def test_storm_costs_more_virtual_time(self):
        clock = VirtualClock()
        service = ModeledLatencyService(
            _EchoService(), clock, base_ms=15.0, seed=0,
            weather_factors=WEATHER_SERVICE_SLOWDOWN)
        before = clock.now()
        service.handle(_WeatherRequest(weather=0))
        clear_cost = clock.now() - before

        clock2 = VirtualClock()
        service2 = ModeledLatencyService(
            _EchoService(), clock2, base_ms=15.0, seed=0,
            weather_factors=WEATHER_SERVICE_SLOWDOWN)
        service2.handle(_WeatherRequest(weather=3))
        storm_cost = clock2.now()
        assert storm_cost == pytest.approx(2.0 * clear_cost)

    def test_coupling_never_perturbs_the_rng_stream(self):
        # Same seed, same requests: enabling the coupling on an
        # all-clear stream reproduces the uncoupled costs exactly.
        costs = []
        for factors in (None, WEATHER_SERVICE_SLOWDOWN):
            clock = VirtualClock()
            service = ModeledLatencyService(
                _EchoService(), clock, base_ms=15.0, seed=42,
                weather_factors=factors)
            stamps = []
            for _ in range(16):
                service.handle(_WeatherRequest(weather=0))
                stamps.append(clock.now())
            costs.append(stamps)
        assert costs[0] == costs[1]

    def test_weather_slowdown_scenario_builds_queueing(self):
        result = run_scenario("weather_slowdown", LoadRunConfig(**SMOKE))
        phases = {p["name"]: p for p in result.artifact["phases"]}
        assert phases["storm"]["service_ms"]["p99"] \
            > phases["clear"]["service_ms"]["p99"]
        assert phases["storm"]["latency_ms"]["p99"] \
            > 2.0 * phases["clear"]["latency_ms"]["p99"]
        assert phases["clearing"]["degraded"]["total"] == 0
