"""Tests for baseline internals: plug-in time head, distance chaining,
cosine-schedule training option, and the deep-baseline template."""

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.baselines import DeepBaselineConfig, PluginTimeHead
from repro.baselines.deep_common import _route_distances
from repro.core import M2G4RTP, M2G4RTPConfig
from repro.training import Trainer, TrainerConfig


class TestRouteDistances:
    def test_legs_and_cumulative_consistent(self, dataset):
        instance = dataset[0]
        legs, cumulative = _route_distances(instance, instance.route)
        assert legs.shape == cumulative.shape == (instance.num_locations,)
        assert np.allclose(np.cumsum(legs), cumulative)
        assert np.all(legs >= 0)

    def test_first_leg_from_courier(self, dataset):
        instance = dataset[0]
        legs, _ = _route_distances(instance, instance.route)
        first = instance.locations[int(instance.route[0])]
        expected = first.distance_to(*instance.courier_position) / 1000.0
        assert np.isclose(legs[0], expected)


class TestPluginTimeHead:
    def test_output_in_node_order(self, dataset, rng):
        config = DeepBaselineConfig()
        head = PluginTimeHead(rep_dim=8, config=config, rng=rng)
        instance = dataset[0]
        n = instance.num_locations
        reps = Tensor(rng.normal(size=(n, 8)))
        times = head(reps, instance.route, instance)
        assert times.shape == (n,)

    def test_route_order_matters(self, dataset, rng):
        config = DeepBaselineConfig()
        head = PluginTimeHead(rep_dim=8, config=config, rng=rng)
        instance = next(i for i in dataset if i.num_locations >= 4)
        n = instance.num_locations
        reps = Tensor(rng.normal(size=(n, 8)))
        a = head(reps, instance.route, instance).data
        reversed_route = instance.route[::-1].copy()
        b = head(reps, reversed_route, instance).data
        assert not np.allclose(a, b)

    def test_gradients_flow(self, dataset, rng):
        config = DeepBaselineConfig()
        head = PluginTimeHead(rep_dim=8, config=config, rng=rng)
        instance = dataset[0]
        reps = Tensor(rng.normal(size=(instance.num_locations, 8)),
                      requires_grad=True)
        head(reps, instance.route, instance).sum().backward()
        assert reps.grad is not None


class TestCosineTrainer:
    def test_cosine_schedule_trains(self, splits):
        train, _, _ = splits
        model = M2G4RTP(M2G4RTPConfig(hidden_dim=16, num_heads=2,
                                      num_encoder_layers=1))
        config = TrainerConfig(epochs=3, lr_schedule="cosine")
        history = Trainer(model, config).fit(train[:8])
        assert history.num_epochs == 3
        assert history.train_loss[-1] < history.train_loss[0]

    def test_unknown_schedule_rejected(self, splits):
        train, _, _ = splits
        model = M2G4RTP(M2G4RTPConfig(hidden_dim=16, num_heads=2,
                                      num_encoder_layers=1))
        config = TrainerConfig(epochs=1, lr_schedule="bogus")
        with pytest.raises(ValueError):
            Trainer(model, config).fit(train[:2])
