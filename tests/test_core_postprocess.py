"""Tests for AOI-contiguity repair and sampling-based uncertainty."""

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.core import (
    M2G4RTP,
    M2G4RTPConfig,
    RouteDecoder,
    enforce_aoi_contiguity,
    predict_with_uncertainty,
    sample_route,
)
from repro.eval import aoi_switch_count


class TestAOIContiguity:
    def test_already_contiguous_unchanged(self):
        route = np.array([0, 1, 2, 3])
        aoi_of = np.array([0, 0, 1, 1])
        assert np.array_equal(enforce_aoi_contiguity(route, aoi_of), route)

    def test_bouncing_route_repaired(self):
        # Route bounces A-B-A-B; repair groups to A-A-B-B.
        route = np.array([0, 2, 1, 3])
        aoi_of = np.array([0, 0, 1, 1])
        repaired = enforce_aoi_contiguity(route, aoi_of)
        assert repaired.tolist() == [0, 1, 2, 3]

    def test_preserves_within_aoi_order(self):
        route = np.array([2, 0, 3, 1])
        aoi_of = np.array([0, 0, 1, 1])
        repaired = enforce_aoi_contiguity(route, aoi_of)
        # AOI 1 first (node 2 first seen), then AOI 0; orders preserved.
        assert repaired.tolist() == [2, 3, 0, 1]

    def test_switch_count_never_increases(self, rng):
        for _ in range(20):
            n = int(rng.integers(4, 12))
            aoi_of = rng.integers(0, 3, size=n)
            route = rng.permutation(n)
            repaired = enforce_aoi_contiguity(route, aoi_of)
            assert sorted(repaired.tolist()) == list(range(n))
            assert (aoi_switch_count(repaired, aoi_of)
                    <= aoi_switch_count(route, aoi_of))

    def test_rejects_non_permutation(self):
        with pytest.raises(ValueError):
            enforce_aoi_contiguity([0, 0, 1], [0, 0, 0])


class TestSampleRoute:
    @pytest.fixture
    def decoder(self, rng):
        return RouteDecoder(6, 8, 3, rng, restrict_to_neighbors=False)

    def test_sample_is_permutation(self, decoder, rng):
        nodes = Tensor(rng.normal(size=(6, 6)))
        route = sample_route(decoder, nodes, Tensor(np.zeros(3)), rng)
        assert sorted(route.tolist()) == list(range(6))

    def test_invalid_temperature(self, decoder, rng):
        nodes = Tensor(rng.normal(size=(3, 6)))
        with pytest.raises(ValueError):
            sample_route(decoder, nodes, Tensor(np.zeros(3)), rng,
                         temperature=0.0)

    def test_low_temperature_approaches_greedy(self, decoder, rng):
        from repro.autodiff import no_grad
        nodes = Tensor(rng.normal(size=(6, 6)) * 3)
        courier = Tensor(np.zeros(3))
        with no_grad():
            greedy = decoder(nodes, courier).route
        matches = 0
        for seed in range(5):
            sampled = sample_route(decoder, nodes, courier,
                                   np.random.default_rng(seed),
                                   temperature=0.01)
            matches += int(np.array_equal(sampled, greedy))
        assert matches >= 4

    def test_high_temperature_diversifies(self, decoder, rng):
        nodes = Tensor(rng.normal(size=(7, 6)))
        courier = Tensor(np.zeros(3))
        routes = {tuple(sample_route(decoder, nodes, courier,
                                     np.random.default_rng(seed),
                                     temperature=5.0).tolist())
                  for seed in range(10)}
        assert len(routes) > 1


class TestUncertaintyPrediction:
    @pytest.fixture(scope="class")
    def model(self):
        return M2G4RTP(M2G4RTPConfig(hidden_dim=16, num_heads=2,
                                     num_encoder_layers=1))

    def test_shapes_and_ordering(self, model, graph, instance):
        prediction = predict_with_uncertainty(model, graph, num_samples=6)
        n = instance.num_locations
        assert sorted(prediction.route.tolist()) == list(range(n))
        assert prediction.eta_mean.shape == (n,)
        assert np.all(prediction.eta_low <= prediction.eta_high + 1e-9)
        assert np.all(prediction.eta_std >= 0)
        assert prediction.num_samples == 6

    def test_requires_multiple_samples(self, model, graph):
        with pytest.raises(ValueError):
            predict_with_uncertainty(model, graph, num_samples=1)

    def test_deterministic_given_seed(self, model, graph):
        a = predict_with_uncertainty(model, graph, num_samples=4, seed=3)
        b = predict_with_uncertainty(model, graph, num_samples=4, seed=3)
        assert np.array_equal(a.route, b.route)
        assert np.allclose(a.eta_mean, b.eta_mean)

    def test_restores_training_mode(self, model, graph):
        model.train()
        predict_with_uncertainty(model, graph, num_samples=3)
        assert model.training
        model.eval()
