"""Tests for Borda-count route aggregation and the model ensemble."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import EnsemblePredictor, M2G4RTP, M2G4RTPConfig, borda_aggregate


class TestBordaAggregate:
    def test_single_route_identity(self):
        route = np.array([2, 0, 1])
        assert np.array_equal(borda_aggregate([route]), route)

    def test_unanimous_routes(self):
        route = np.array([3, 1, 0, 2])
        assert np.array_equal(borda_aggregate([route, route, route]), route)

    def test_majority_wins(self):
        a = np.array([0, 1, 2])
        b = np.array([2, 1, 0])
        result = borda_aggregate([a, a, b])
        assert result.tolist() == [0, 1, 2]

    def test_tie_breaks_toward_first_member(self):
        a = np.array([0, 1])
        b = np.array([1, 0])
        assert borda_aggregate([a, b]).tolist() == [0, 1]
        assert borda_aggregate([b, a]).tolist() == [1, 0]

    def test_requires_routes(self):
        with pytest.raises(ValueError):
            borda_aggregate([])

    def test_rejects_non_permutation(self):
        with pytest.raises(ValueError):
            borda_aggregate([np.array([0, 0, 1])])

    @given(st.integers(2, 8), st.integers(1, 5), st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_always_a_permutation(self, n, members, seed):
        rng = np.random.default_rng(seed)
        routes = [rng.permutation(n) for _ in range(members)]
        result = borda_aggregate(routes)
        assert sorted(result.tolist()) == list(range(n))


class TestEnsemblePredictor:
    @pytest.fixture(scope="class")
    def ensemble(self):
        models = [
            M2G4RTP(M2G4RTPConfig(hidden_dim=16, num_heads=2,
                                  num_encoder_layers=1, seed=seed))
            for seed in (0, 1, 2)
        ]
        return EnsemblePredictor(models)

    def test_needs_models(self):
        with pytest.raises(ValueError):
            EnsemblePredictor([])

    def test_len(self, ensemble):
        assert len(ensemble) == 3

    def test_prediction_valid(self, ensemble, graph, instance):
        output = ensemble.predict(graph)
        assert sorted(output.route.tolist()) == list(
            range(instance.num_locations))
        assert sorted(output.aoi_route.tolist()) == list(
            range(instance.num_aois))
        assert np.all(np.isfinite(output.arrival_times))

    def test_times_are_member_mean(self, ensemble, graph):
        member_times = [model.predict(graph).arrival_times
                        for model in ensemble.models]
        output = ensemble.predict(graph)
        assert np.allclose(output.arrival_times,
                           np.mean(member_times, axis=0))

    def test_single_member_matches_model(self, graph):
        model = M2G4RTP(M2G4RTPConfig(hidden_dim=16, num_heads=2,
                                      num_encoder_layers=1, seed=7))
        solo = EnsemblePredictor([model])
        assert np.array_equal(solo.predict(graph).route,
                              model.predict(graph).route)
