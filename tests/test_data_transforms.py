"""Tests for perturbation transforms and the robustness sweep."""

import numpy as np
import pytest

from repro.data import (
    drop_locations,
    drop_random_locations,
    jitter_coordinates,
    perturb_deadlines,
    robustness_sweep,
)


class TestJitter:
    def test_zero_sigma_identity(self, dataset, rng):
        instance = dataset[0]
        jittered = jitter_coordinates(instance, 0.0, rng)
        assert np.allclose(jittered.location_coords(),
                           instance.location_coords())

    def test_negative_sigma_rejected(self, dataset, rng):
        with pytest.raises(ValueError):
            jitter_coordinates(dataset[0], -1.0, rng)

    def test_displacement_scale(self, dataset):
        instance = dataset[0]
        rng = np.random.default_rng(0)
        jittered = jitter_coordinates(instance, 50.0, rng)
        from repro.data import geo_distance_meters
        displacements = [
            geo_distance_meters(*a.coord, *b.coord)
            for a, b in zip(instance.locations, jittered.locations)
        ]
        assert 0 < np.mean(displacements) < 300

    def test_labels_unchanged(self, dataset, rng):
        instance = dataset[0]
        jittered = jitter_coordinates(instance, 100.0, rng)
        assert np.array_equal(jittered.route, instance.route)
        assert np.allclose(jittered.arrival_times, instance.arrival_times)

    def test_input_not_mutated(self, dataset, rng):
        instance = dataset[0]
        coords_before = instance.location_coords().copy()
        jitter_coordinates(instance, 100.0, rng)
        assert np.allclose(instance.location_coords(), coords_before)

    def test_result_validates(self, dataset, rng):
        jitter_coordinates(dataset[0], 200.0, rng).validate()


class TestDeadlinePerturbation:
    def test_zero_sigma_identity(self, dataset, rng):
        instance = dataset[0]
        perturbed = perturb_deadlines(instance, 0.0, rng)
        assert all(a.deadline == b.deadline for a, b in
                   zip(instance.locations, perturbed.locations))

    def test_negative_rejected(self, dataset, rng):
        with pytest.raises(ValueError):
            perturb_deadlines(dataset[0], -5.0, rng)

    def test_deadlines_moved(self, dataset, rng):
        instance = dataset[0]
        perturbed = perturb_deadlines(instance, 30.0, rng)
        moved = [a.deadline != b.deadline for a, b in
                 zip(instance.locations, perturbed.locations)]
        assert any(moved)


class TestDropLocations:
    def test_keep_all_identity(self, dataset):
        instance = dataset[0]
        kept = drop_locations(instance, range(instance.num_locations))
        assert kept.num_locations == instance.num_locations
        assert np.array_equal(kept.route, instance.route)

    def test_subset_preserves_relative_order(self, dataset):
        instance = next(i for i in dataset if i.num_locations >= 5)
        keep = list(range(instance.num_locations))[::2]
        reduced = drop_locations(instance, keep)
        # Reconstruct the original relative order of the kept subset.
        kept_in_route_order = [i for i in instance.route if i in set(keep)]
        expected = [sorted(keep).index(i) for i in kept_in_route_order]
        assert reduced.route.tolist() == expected

    def test_result_validates(self, dataset):
        instance = next(i for i in dataset if i.num_locations >= 5)
        drop_locations(instance, [0, 2, 4]).validate()

    def test_empty_keep_rejected(self, dataset):
        with pytest.raises(ValueError):
            drop_locations(dataset[0], [])

    def test_out_of_range_rejected(self, dataset):
        with pytest.raises(ValueError):
            drop_locations(dataset[0], [999])

    def test_aois_pruned(self, dataset):
        instance = next(i for i in dataset if i.num_aois >= 3)
        # Keep exactly the members of the first-visited AOI.
        aoi_of = instance.aoi_index_of_location()
        first_aoi = aoi_of[instance.route[0]]
        keep = [i for i in range(instance.num_locations)
                if aoi_of[i] == first_aoi]
        reduced = drop_locations(instance, keep)
        assert reduced.num_aois == 1
        assert reduced.aoi_route.tolist() == [0]

    def test_drop_random_fraction(self, dataset, rng):
        instance = next(i for i in dataset if i.num_locations >= 8)
        reduced = drop_random_locations(instance, 0.5, rng)
        assert 2 <= reduced.num_locations <= instance.num_locations
        reduced.validate()

    def test_drop_random_invalid_fraction(self, dataset, rng):
        with pytest.raises(ValueError):
            drop_random_locations(dataset[0], 0.0, rng)


class TestRobustnessSweep:
    def test_monotone_degradation_signal(self, splits):
        """A distance-based router degrades as GPS noise grows."""
        from repro.baselines import DistanceGreedy
        from repro.metrics import kendall_rank_correlation
        train, _, test = splits
        baseline = DistanceGreedy().fit(train)

        def predict(instance):
            prediction = baseline.predict(instance)
            return prediction.route, prediction.arrival_times

        def metric(route, times, instance):
            return kendall_rank_correlation(route, instance.route)

        scores = robustness_sweep(
            predict, list(test), noise_levels=[0.0, 2000.0],
            transform=jitter_coordinates, metric=metric)
        assert len(scores) == 2
        assert scores[1] < scores[0]  # heavy noise clearly hurts
