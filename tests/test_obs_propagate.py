"""Cross-process/thread trace propagation and collector concurrency.

Covers the wire protocol (:mod:`repro.obs.propagate`), the worker-side
span session and coordinator-side stitch, the micro-batcher's
thread-hop grafting, end-to-end span shipping from real parallel
training workers, and the :class:`TraceCollector` concurrency contract
(N threads opening nested spans while another thread renders).
"""

import json
import threading

import pytest

from repro.core import M2G4RTP, M2G4RTPConfig
from repro.obs import (
    MetricsRegistry,
    Span,
    SpanContext,
    TraceCollector,
    capture_context,
    current_context,
    disable_tracing,
    enable_tracing,
    merge_worker_spans,
    worker_span_session,
)
from repro.obs import tracing
from repro.parallel import DataParallelTrainer, ParallelConfig
from repro.service.batching import MicroBatcher
from repro.training import TrainerConfig


@pytest.fixture(autouse=True)
def _tracing_off():
    disable_tracing()
    yield
    disable_tracing()


# ----------------------------------------------------------------------
class TestSpanContext:
    def test_wire_round_trip(self):
        context = SpanContext("t000001", "s000042")
        assert context.to_wire() == ("t000001", "s000042")
        assert SpanContext.from_wire(context.to_wire()) == context

    def test_none_passes_through(self):
        assert SpanContext.from_wire(None) is None

    def test_current_context_requires_active_span(self):
        assert current_context() is None
        assert capture_context() is None
        collector = enable_tracing()
        assert current_context() is None  # tracing on, no span open
        with collector.span("work") as active:
            context = current_context()
            assert context == SpanContext(active.trace_id, active.span_id)
            assert capture_context() == (active.trace_id, active.span_id)
        assert current_context() is None


class TestWorkerSpanSession:
    def test_inactive_without_context_or_tracing(self):
        with worker_span_session(None) as session:
            assert not session.active
            with tracing.span("worker.step"):
                pass
            assert session.export() == []

    def test_active_with_shipped_context(self):
        with worker_span_session(("t000001", "s000001")) as session:
            assert session.active
            with tracing.span("worker.step", shard=3):
                with tracing.span("worker.inner"):
                    pass
            records = session.export()
        assert len(records) == 1
        assert records[0]["name"] == "worker.step"
        assert records[0]["attrs"]["shard"] == 3
        assert records[0]["children"][0]["name"] == "worker.inner"
        # Session torn down: process-wide tracing is off again.
        assert tracing.get_collector() is None

    def test_fork_inherited_collector_is_shielded_and_restored(self):
        inherited = enable_tracing()
        with worker_span_session(None) as session:
            assert session.active
            with tracing.span("worker.step"):
                pass
            assert session.export()
        # The inherited collector is restored untouched: worker spans
        # must ship via export(), never leak into the parent's tree.
        assert tracing.get_collector() is inherited
        assert inherited.roots == []

    def test_merge_attaches_under_dispatching_span(self):
        with worker_span_session(("t", "s")) as session:
            with tracing.span("worker.step"):
                pass
            records = session.export()
        collector = enable_tracing()
        with collector.span("parallel.step") as step_span:
            wire = (step_span.trace_id, step_span.span_id)
            merged = merge_worker_spans(records, wire)
        assert merged == 1
        [root] = collector.roots
        [child] = root.children
        assert child.name == "worker.step"
        # Adopted into the dispatching trace with fresh local ids.
        assert child.trace_id == step_span.trace_id
        assert child.span_id != records[0]["span_id"]
        # Shipped durations preserved verbatim.
        assert child.duration_ms == records[0]["duration_ms"]

    def test_merge_unknown_parent_becomes_root(self):
        collector = enable_tracing()
        record = Span("worker.step").freeze(1.5).to_dict()
        assert merge_worker_spans([record], ("tX", "sX")) == 1
        assert [r.name for r in collector.roots] == ["worker.step"]

    def test_merge_noop_when_tracing_off_or_empty(self):
        record = Span("worker.step").freeze(1.0).to_dict()
        assert merge_worker_spans([record], ("t", "s")) == 0
        enable_tracing()
        assert merge_worker_spans([], ("t", "s")) == 0


# ----------------------------------------------------------------------
class _EchoService:
    """Stand-in service: handle_batch returns one token per request."""

    def handle_batch(self, requests):
        return [f"response-{id(r)}" for r in requests]


class TestMicroBatcherHop:
    def test_flush_grafts_hop_into_each_submitting_trace(self):
        collector = enable_tracing()
        clock = iter(x / 10.0 for x in range(100))
        batcher = MicroBatcher(_EchoService(), max_batch_size=8,
                               clock=lambda: next(clock))
        tickets = []
        request_spans = []
        for index in range(2):
            with collector.span(f"request_{index}") as request_span:
                tickets.append(batcher.submit(object()))
                request_spans.append(request_span)
        batcher.flush()
        assert all(t.done for t in tickets)

        flush_roots = [r for r in collector.roots
                       if r.name == "rtp.batch.flush"]
        assert len(flush_roots) == 1
        flush_span = flush_roots[0]
        assert sorted(flush_span.attrs["linked_traces"]) == \
            sorted(s.trace_id for s in request_spans)
        for request_span in request_spans:
            [hop] = [c for c in request_span.children
                     if c.name == "service.batch.hop"]
            assert hop.trace_id == request_span.trace_id
            assert hop.attrs["flush_span"] == flush_span.span_id
            # Hop duration is the queue wait measured on the clock.
            assert hop.duration_ms == pytest.approx(
                hop.attrs["wait_ms"])
            assert hop.duration_ms > 0

    def test_untraced_submissions_flush_without_stitching(self):
        batcher = MicroBatcher(_EchoService(), max_batch_size=2)
        first = batcher.submit(object())
        second = batcher.submit(object())  # auto-flush at capacity
        assert first.done and second.done
        assert first.trace_ctx is None


# ----------------------------------------------------------------------
class TestCollectorConcurrency:
    THREADS = 8
    TRACES_PER_THREAD = 40

    def _worker(self, collector, tag, failures):
        try:
            for index in range(self.TRACES_PER_THREAD):
                with collector.span(f"root_{tag}", iteration=index):
                    with collector.span(f"mid_{tag}"):
                        with collector.span(f"leaf_{tag}"):
                            pass
        except Exception as error:  # pragma: no cover
            failures.append(error)

    def test_nesting_correct_under_contention(self):
        collector = TraceCollector()
        failures = []
        threads = [
            threading.Thread(target=self._worker,
                             args=(collector, tag, failures))
            for tag in range(self.THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures
        assert len(collector.roots) == self.THREADS * self.TRACES_PER_THREAD
        trace_ids = set()
        for root in collector.roots:
            tag = root.name.split("_")[1]
            [mid] = root.children
            [leaf] = mid.children
            # Thread-local stacks: never a child from another thread.
            assert mid.name == f"mid_{tag}"
            assert leaf.name == f"leaf_{tag}"
            assert {s.trace_id for s in root.iter_spans()} == \
                {root.trace_id}
            trace_ids.add(root.trace_id)
        assert len(trace_ids) == len(collector.roots)

    def test_render_and_jsonl_never_tear_during_writes(self):
        collector = TraceCollector()
        stop = threading.Event()
        failures = []

        def serialise_loop():
            try:
                while not stop.is_set():
                    collector.render(max_roots=10)
                    for line in collector.to_jsonl().splitlines():
                        record = json.loads(line)  # every line valid JSON
                        assert "name" in record
            except Exception as error:  # pragma: no cover
                failures.append(error)

        reader = threading.Thread(target=serialise_loop)
        reader.start()
        writers = [
            threading.Thread(target=self._worker,
                             args=(collector, tag, failures))
            for tag in range(self.THREADS)
        ]
        for thread in writers:
            thread.start()
        for thread in writers:
            thread.join()
        stop.set()
        reader.join()
        assert not failures
        # Final serialisation sees the complete forest.
        assert len(collector.to_jsonl().splitlines()) == \
            self.THREADS * self.TRACES_PER_THREAD


# ----------------------------------------------------------------------
class TestParallelWorkerSpans:
    def test_worker_spans_shipped_and_stitched(self, splits):
        """Spans opened inside worker processes land in the
        coordinator's collector, nested under the dispatching step."""
        train, _, _ = splits
        collector = enable_tracing()
        registry = MetricsRegistry()
        model = M2G4RTP(M2G4RTPConfig(
            hidden_dim=16, num_heads=2, num_encoder_layers=1, seed=5))
        trainer = DataParallelTrainer(
            model, TrainerConfig(epochs=1, batch_size=4, patience=10),
            ParallelConfig(num_workers=2), registry=registry)
        trainer.fit(train[:8])

        forest = [span_obj for root in collector.roots
                  for span_obj in root.iter_spans()]
        step_spans = [s for s in forest if s.name == "parallel.step"]
        assert step_spans, "the coordinator must open parallel.step spans"
        worker_spans = [
            child
            for step in step_spans
            for child in step.iter_spans()
            if child.name == "parallel.worker.step"
        ]
        assert worker_spans, \
            "worker-process spans must ship back and be stitched in"
        workers_seen = {s.attrs["worker"] for s in worker_spans}
        assert workers_seen == {0, 1}
        for span_obj in worker_spans:
            parent_step = next(s for s in step_spans
                               if span_obj in list(s.iter_spans()))
            # Adopted spans join the dispatching step's trace.
            assert span_obj.trace_id == parent_step.trace_id
            assert span_obj.duration_ms > 0

        # The step-time histogram's exemplars resolve to those traces.
        histogram = registry.get("rtp_train_step_ms")
        entries = histogram.exemplars()
        assert entries
        step_trace_ids = {s.trace_id for s in step_spans}
        assert entries[0]["trace_id"] in step_trace_ids
        assert collector.trace_roots(entries[0]["trace_id"])
