"""Property fuzz suite for :class:`repro.online.ExperienceBuffer`.

Random interleavings of the buffer's four operations — ``offer``,
``drain``, ``snapshot`` and ``restore`` — must preserve its invariants
at every step:

* the recency window never exceeds ``capacity``, the ingestion queue
  never exceeds ``max_pending``, the reservoir never exceeds its
  capacity;
* every offer beyond the pending bound is *dropped and counted*, never
  blocking, and the accept/drop verdict is exactly predicted by the
  queue depth at call time;
* drained experiences come out in ingestion order with contiguous
  sequence numbers; the window is always the most recent drained tail;
* the reservoir holds only window-evicted experiences, and its
  contents are a pure function of ``(seed, eviction stream)`` — so an
  op stream interrupted by snapshot/restore at arbitrary points ends
  bitwise identical to the same stream run straight through.

The default leg is smoke-sized; ``--runslow`` unlocks the deep sweep
(more seeds, longer op streams).
"""

import numpy as np
import pytest

from repro.data import GeneratorConfig, SyntheticWorld
from repro.load.stream import RequestStream, build_instance_pool
from repro.online import ExperienceBuffer


@pytest.fixture(scope="module")
def pool():
    world = SyntheticWorld(GeneratorConfig(
        num_aois=40, num_couriers=6, num_days=4,
        instances_per_courier_day=2, seed=7))
    return build_instance_pool(world, 24, seed=8)


def _fingerprint(buffer):
    """Full observable state of a buffer (after invariant-safe reads)."""
    return (
        buffer.stats(),
        [e.seq for e in buffer.window()],
        [e.seq for e in buffer.reservoir()],
        buffer.window_span(),
    )


class _Oracle:
    """Reference model of the buffer's counting behaviour."""

    def __init__(self, capacity, max_pending):
        self.capacity = capacity
        self.max_pending = max_pending
        self.accepted = 0
        self.dropped = 0
        self.pending = 0
        self.drained = 0

    def offer(self):
        """Predicted verdict of the next offer."""
        if self.pending >= self.max_pending:
            self.dropped += 1
            return False
        self.pending += 1
        self.accepted += 1
        return True

    def drain(self):
        count = self.pending
        self.pending = 0
        self.drained += count
        return count

    @property
    def evicted(self):
        return max(0, self.drained - self.capacity)

    def window_seqs(self):
        """The window must be the most recent drained tail."""
        return list(range(self.evicted, self.drained))


def _check_invariants(buffer, oracle):
    assert len(buffer) <= buffer.capacity
    assert buffer.pending <= buffer.max_pending
    assert len(buffer.reservoir()) <= buffer.reservoir_capacity
    assert buffer.ingested == oracle.accepted
    assert buffer.dropped == oracle.dropped
    assert buffer.pending == oracle.pending
    assert buffer.evicted == oracle.evicted
    window_seqs = [e.seq for e in buffer.window()]
    assert window_seqs == oracle.window_seqs()
    reservoir_seqs = [e.seq for e in buffer.reservoir()]
    evicted_seqs = set(range(oracle.evicted))
    assert set(reservoir_seqs) <= evicted_seqs, (
        "the reservoir may only hold window-evicted experiences")
    assert len(set(reservoir_seqs)) == len(reservoir_seqs)
    # training_set is reservoir + window with the tail kept on trim.
    limit = max(2, buffer.capacity // 2)
    trimmed = [e.seq for e in buffer.training_set(limit=limit)]
    assert len(trimmed) <= limit
    combined = reservoir_seqs + window_seqs
    assert trimmed == combined[-len(trimmed):] if trimmed else True


def _run_ops(pool, seed, num_ops, snapshot_at, tmp_path):
    """Apply a seeded op stream; returns the final fingerprint.

    ``snapshot_at`` is a set of op indices after which the buffer is
    snapshotted and *replaced* by a fresh instance restored from the
    snapshot — proving the decision stream (reservoir slots, counters)
    survives arbitrary restart points.
    """
    rng = np.random.default_rng(seed)
    params = dict(
        capacity=int(rng.integers(4, 12)),
        reservoir=int(rng.integers(0, 6)),
        max_pending=int(rng.integers(2, 8)),
        seed=seed,
    )
    buffer = ExperienceBuffer(**params)
    oracle = _Oracle(params["capacity"], params["max_pending"])
    stream = RequestStream(pool, seed=seed + 1)
    snapshot_path = tmp_path / f"buffer-{seed}.pkl"

    for index in range(num_ops):
        op = rng.choice(["offer", "offer", "offer", "drain"])
        if op == "offer":
            request = stream.next()
            instance = stream.last_instance
            expected = oracle.offer()
            got = buffer.offer(
                request, instance.route,
                np.asarray(instance.arrival_times, dtype=float))
            assert got is expected, (
                f"op {index}: offer verdict {got} != predicted "
                f"{expected} at pending={oracle.pending}")
        else:
            expected_count = oracle.drain()
            drained = buffer.drain()
            assert len(drained) == expected_count
            seqs = [e.seq for e in drained]
            assert seqs == sorted(seqs)
        _check_invariants(buffer, oracle)

        if index in snapshot_at:
            buffer.snapshot(snapshot_path)
            replacement = ExperienceBuffer(**params)
            replacement.restore(snapshot_path)
            assert _fingerprint(replacement) == _fingerprint(buffer), (
                f"op {index}: snapshot/restore changed observable state")
            buffer = replacement
            _check_invariants(buffer, oracle)

    buffer.drain()
    oracle.drain()
    _check_invariants(buffer, oracle)
    return _fingerprint(buffer)


def _fuzz_one_seed(pool, seed, num_ops, tmp_path):
    rng = np.random.default_rng(seed + 1000)
    cuts = rng.choice(num_ops, size=min(3, num_ops), replace=False)
    interrupted = _run_ops(pool, seed, num_ops, set(int(c) for c in cuts),
                           tmp_path)
    straight = _run_ops(pool, seed, num_ops, set(), tmp_path)
    assert interrupted == straight, (
        f"seed {seed}: restarting at ops {sorted(cuts)} diverged from "
        f"the uninterrupted run")


class TestBufferPropertyFuzz:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_interleavings_smoke(self, pool, seed, tmp_path):
        _fuzz_one_seed(pool, seed, num_ops=80, tmp_path=tmp_path)

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", list(range(3, 15)))
    def test_random_interleavings_deep(self, pool, seed, tmp_path):
        _fuzz_one_seed(pool, seed, num_ops=300, tmp_path=tmp_path)

    def test_zero_reservoir_never_retains(self, pool, tmp_path):
        _run_ops(pool, seed=99, num_ops=60, snapshot_at={10, 40},
                 tmp_path=tmp_path)
        # _run_ops draws reservoir=0 sometimes; force the edge here.
        buffer = ExperienceBuffer(capacity=4, reservoir=0, max_pending=8,
                                  seed=99)
        stream = RequestStream(pool, seed=100)
        for _ in range(20):
            request = stream.next()
            instance = stream.last_instance
            buffer.offer(request, instance.route,
                         np.asarray(instance.arrival_times, dtype=float))
            buffer.drain()
        assert buffer.reservoir() == []
        assert buffer.evicted == 16
