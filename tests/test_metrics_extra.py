"""Tests for the extra route metrics and paired significance testing."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.metrics import (
    PairedComparison,
    edit_distance,
    normalized_edit_distance,
    paired_comparison,
    prefix_accuracy,
    route_length_meters,
    route_length_ratio,
)

permutations = st.integers(2, 10).flatmap(
    lambda n: st.permutations(list(range(n))))


class TestEditDistance:
    def test_identical_zero(self):
        assert edit_distance([0, 1, 2], [0, 1, 2]) == 0

    def test_swap_costs_two(self):
        assert edit_distance([1, 0, 2], [0, 1, 2]) == 2

    def test_normalized_range(self):
        assert normalized_edit_distance([2, 1, 0], [0, 1, 2]) == pytest.approx(2 / 3)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            edit_distance([0, 1], [0, 1, 2])

    @given(permutations)
    @settings(max_examples=30, deadline=None)
    def test_symmetric_and_bounded(self, route):
        rng = np.random.default_rng(len(route))
        other = rng.permutation(len(route)).tolist()
        d1 = edit_distance(route, other)
        d2 = edit_distance(other, route)
        assert d1 == d2
        assert 0 <= d1 <= len(route)
        assert d1 != 1  # permutations can't differ in exactly one slot


class TestPrefixAccuracy:
    def test_exact_prefix(self):
        assert prefix_accuracy([3, 1, 0, 2], [3, 1, 2, 0], k=2) == 1.0

    def test_wrong_first(self):
        assert prefix_accuracy([1, 0], [0, 1], k=1) == 0.0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            prefix_accuracy([0, 1], [0, 1], k=0)

    def test_k_clipped(self):
        assert prefix_accuracy([0, 1], [0, 1], k=10) == 1.0


class TestRouteLength:
    def test_true_route_ratio_is_one(self, dataset):
        instance = dataset[0]
        assert route_length_ratio(instance, instance.route) == pytest.approx(1.0)

    def test_longer_route_ratio_above_one(self, dataset):
        instance = next(i for i in dataset if i.num_locations >= 4)
        from repro.baselines import ShortestRouteTSP
        solver = ShortestRouteTSP()
        shortest = solver.solve(instance)
        # The heuristic-shortest route is never longer than the true one.
        assert route_length_ratio(instance, shortest) <= 1.0 + 1e-9

    def test_length_positive(self, dataset):
        instance = dataset[0]
        assert route_length_meters(instance, instance.route) > 0


class TestPairedComparison:
    def test_clear_difference_significant(self, rng):
        a = rng.normal(1.0, 0.1, size=50)
        b = rng.normal(0.0, 0.1, size=50)
        result = paired_comparison(a, b, seed=1)
        assert result.significant
        assert result.p_value < 0.01
        assert result.ci_low > 0.5

    def test_no_difference_not_significant(self, rng):
        shared = rng.normal(0.0, 1.0, size=60)
        noise = rng.normal(0.0, 0.01, size=60)
        result = paired_comparison(shared + noise, shared - noise, seed=2)
        assert result.p_value > 0.01 or not result.significant

    def test_sign_of_mean_difference(self, rng):
        a = rng.normal(0.0, 0.1, size=30)
        result = paired_comparison(a, a + 2.0, seed=3)
        assert result.mean_difference < 0
        assert result.ci_high < 0

    def test_input_validation(self):
        with pytest.raises(ValueError):
            paired_comparison([1.0], [1.0])
        with pytest.raises(ValueError):
            paired_comparison([1.0, 2.0], [1.0])
        with pytest.raises(ValueError):
            paired_comparison([1.0, 2.0], [1.0, 2.0], confidence=1.5)

    def test_render(self, rng):
        a = rng.normal(1.0, 0.1, size=20)
        b = rng.normal(0.0, 0.1, size=20)
        text = paired_comparison(a, b).render("ours-baseline")
        assert "ours-baseline" in text and "p=" in text
