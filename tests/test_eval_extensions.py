"""Tests for seed-variance aggregation and SVG case rendering."""

import numpy as np
import pytest

from repro.baselines import DistanceGreedy, TimeGreedy
from repro.eval import (
    MeanStd,
    baseline_predictor,
    build_case_study,
    evaluate_over_seeds,
    format_seeded_table,
    render_case_svg,
    write_case_svgs,
)


class TestMeanStd:
    def test_format(self):
        assert str(MeanStd(74.456, 0.011)) == "74.46±0.01"


class TestEvaluateOverSeeds:
    def _factory(self, splits):
        train, _, _ = splits

        def factory(seed):
            # A deterministic heuristic: seeds produce identical output,
            # so the std must be exactly zero.
            return baseline_predictor(DistanceGreedy().fit(train))
        return factory

    def test_requires_seeds(self, splits):
        _, _, test = splits
        with pytest.raises(ValueError):
            evaluate_over_seeds("x", self._factory(splits), test, seeds=[])

    def test_deterministic_predictor_zero_std(self, splits):
        _, _, test = splits
        result = evaluate_over_seeds(
            "greedy", self._factory(splits), test, seeds=[0, 1, 2])
        cell = result.cell("all", "krc")
        assert cell.std == 0.0
        assert -1 <= cell.mean <= 1

    def test_varying_predictor_nonzero_std(self, splits, rng):
        _, _, test = splits

        def factory(seed):
            local = np.random.default_rng(seed)

            def predict(instance):
                route = local.permutation(instance.num_locations)
                times = local.uniform(0, 100, instance.num_locations)
                return route, times
            return predict

        result = evaluate_over_seeds("random", factory, test, seeds=[1, 2, 3])
        assert result.cell("all", "mae").std > 0

    def test_row_and_table_formatting(self, splits):
        _, _, test = splits
        result = evaluate_over_seeds(
            "greedy", self._factory(splits), test, seeds=[0, 1])
        route_row = result.row("all", "route")
        assert route_row.count("±") == 3
        table = format_seeded_table([result], "time")
        assert "greedy" in table and "±" in table
        with pytest.raises(ValueError):
            result.row("all", "bogus")


class TestSVG:
    @pytest.fixture
    def case(self, splits):
        train, _, test = splits
        predictors = {
            "greedy": baseline_predictor(DistanceGreedy().fit(train)),
            "time": baseline_predictor(TimeGreedy().fit(train)),
        }
        instance = next(i for i in test if i.num_aois >= 2)
        return build_case_study(instance, predictors)

    def test_render_valid_svg(self, case):
        svg = render_case_svg(case)
        assert svg.startswith("<svg")
        assert svg.rstrip().endswith("</svg>")
        # 3 panels: true + 2 methods.
        assert svg.count("<polyline") == 3
        # Every location appears as a dot in every panel.
        assert svg.count("<circle") == 3 * case.instance.num_locations

    def test_write_case_svgs(self, case, tmp_path):
        paths = write_case_svgs([case, case], tmp_path, prefix="demo")
        assert [p.name for p in paths] == ["demo1.svg", "demo2.svg"]
        for path in paths:
            assert path.exists()
            assert "<svg" in path.read_text()

    def test_panel_count_matches_methods(self, case):
        svg = render_case_svg(case)
        assert "true route" in svg
        assert "greedy" in svg and "time" in svg
