"""Service-layer batching: micro-batch queue, graph cache, latency split.

Covers the serving additions around the batched engine:

* ``RTPService.handle_batch`` answers exactly like N sequential
  ``handle`` calls;
* ``MicroBatcher`` flushes on ``max_batch_size`` and on ``max_wait_ms``
  (driven by an injected fake clock), and is a no-op on an empty queue;
* ``GraphCache`` LRU semantics with hit/miss accounting, and the cache
  never changes predictions;
* ``RTPResponse.latency_ms`` always equals ``build_ms + infer_ms``;
* ``ServiceMonitor`` exposes the build/infer split and cache counters.
"""

import dataclasses

import numpy as np
import pytest

from repro.core import M2G4RTP, M2G4RTPConfig
from repro.service import (
    GraphCache,
    MicroBatcher,
    RTPRequest,
    RTPService,
    ServiceMonitor,
    request_fingerprint,
)


@pytest.fixture(scope="module")
def model():
    return M2G4RTP(M2G4RTPConfig(
        hidden_dim=16, num_heads=2, num_encoder_layers=1,
        continuous_embed_dim=8, discrete_embed_dim=4, position_dim=4,
        courier_embed_dim=4, seed=17))


@pytest.fixture(scope="module")
def requests(dataset):
    return [RTPRequest.from_instance(instance)
            for instance in list(dataset)[:10]]


@pytest.fixture
def service(model):
    return RTPService(model)


class FakeClock:
    """Deterministic injectable clock (seconds)."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance_ms(self, ms: float) -> None:
        self.now += ms / 1000.0


# ----------------------------------------------------------------------
# handle_batch parity and latency accounting
# ----------------------------------------------------------------------
class TestHandleBatch:
    def test_batch_matches_sequential(self, service, requests):
        sequential = [service.handle(r) for r in requests[:6]]
        batched = service.handle_batch(requests[:6])
        for seq, bat in zip(sequential, batched):
            np.testing.assert_array_equal(seq.route, bat.route)
            np.testing.assert_allclose(seq.eta_minutes, bat.eta_minutes,
                                       atol=1e-6)
            np.testing.assert_array_equal(seq.aoi_route, bat.aoi_route)
            assert bat.batch_size == 6 and seq.batch_size == 1

    def test_empty_batch(self, service):
        assert service.handle_batch([]) == []

    def test_latency_is_build_plus_infer(self, service, requests):
        """Regression: the stage breakdown must sum to the total."""
        responses = [service.handle(requests[0])]
        responses += service.handle_batch(requests[:5])
        for response in responses:
            assert response.build_ms >= 0.0
            assert response.infer_ms > 0.0
            assert response.latency_ms == pytest.approx(
                response.build_ms + response.infer_ms, abs=1e-9)

    def test_queries_served_counts_batch_members(self, service, requests):
        service.handle(requests[0])
        service.handle_batch(requests[:4])
        assert service.queries_served == 5


# ----------------------------------------------------------------------
# Micro-batching queue
# ----------------------------------------------------------------------
class TestMicroBatcher:
    def test_flushes_on_max_batch_size(self, service, requests):
        batcher = MicroBatcher(service, max_batch_size=3, max_wait_ms=1e9,
                               clock=FakeClock())
        tickets = [batcher.submit(r) for r in requests[:2]]
        assert all(not t.done for t in tickets)
        assert batcher.pending == 2
        tickets.append(batcher.submit(requests[2]))
        assert all(t.done for t in tickets)
        assert batcher.pending == 0
        assert batcher.batches_flushed == 1
        assert batcher.requests_flushed == 3
        for ticket, request in zip(tickets, requests[:3]):
            reference = service.handle(request)
            np.testing.assert_array_equal(ticket.result().route,
                                          reference.route)

    def test_flushes_on_max_wait(self, service, requests):
        clock = FakeClock()
        batcher = MicroBatcher(service, max_batch_size=100, max_wait_ms=10.0,
                               clock=clock)
        ticket = batcher.submit(requests[0])
        clock.advance_ms(9.0)
        assert batcher.poll() == 0          # not old enough yet
        assert not ticket.done
        clock.advance_ms(2.0)
        assert batcher.poll() == 1          # oldest aged out -> flush
        assert ticket.done
        assert batcher.pending == 0

    def test_empty_queue_is_noop(self, service):
        batcher = MicroBatcher(service, clock=FakeClock())
        assert batcher.poll() == 0
        assert batcher.flush() == 0
        assert batcher.batches_flushed == 0

    def test_unflushed_ticket_raises(self, service, requests):
        batcher = MicroBatcher(service, max_batch_size=5, clock=FakeClock())
        ticket = batcher.submit(requests[0])
        with pytest.raises(RuntimeError):
            ticket.result()

    def test_invalid_parameters(self, service):
        with pytest.raises(ValueError):
            MicroBatcher(service, max_batch_size=0)
        with pytest.raises(ValueError):
            MicroBatcher(service, max_wait_ms=-1.0)


# ----------------------------------------------------------------------
# Graph cache
# ----------------------------------------------------------------------
class TestGraphCache:
    def test_hit_and_miss_accounting(self, model, requests):
        service = RTPService(model, cache_size=8)
        service.handle(requests[0])
        assert (service.cache_hits, service.cache_misses) == (0, 1)
        repeat = service.handle(requests[0])
        assert (service.cache_hits, service.cache_misses) == (1, 1)
        assert repeat.cache_hit
        service.handle_batch([requests[0], requests[1]])
        assert (service.cache_hits, service.cache_misses) == (2, 2)

    def test_lru_eviction_order(self):
        cache = GraphCache(max_size=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1          # refresh "a": now b is LRU
        cache.put("c", 3)                   # evicts "b"
        assert cache.keys() == ["a", "c"]
        assert cache.get("b") is None
        assert len(cache) == 2

    def test_cache_disabled_identical_outputs(self, model, requests):
        plain = RTPService(model)
        cached = RTPService(model, cache_size=4)
        for request in (requests[0], requests[1], requests[0]):
            a = plain.handle(request)
            b = cached.handle(request)
            np.testing.assert_array_equal(a.route, b.route)
            np.testing.assert_array_equal(a.eta_minutes, b.eta_minutes)
        assert plain.cache_hits == 0 and cached.cache_hits == 1

    def test_fingerprint_sensitivity(self, requests):
        base = requests[0]
        assert request_fingerprint(base) == request_fingerprint(base)
        moved = dataclasses.replace(
            base, request_time=base.request_time + 1.0)
        assert request_fingerprint(moved) != request_fingerprint(base)
        reweathered = dataclasses.replace(base, weather=base.weather + 1)
        assert request_fingerprint(reweathered) != request_fingerprint(base)

    def test_invalid_cache_size(self):
        with pytest.raises(ValueError):
            GraphCache(max_size=0)


# ----------------------------------------------------------------------
# Monitoring split counters
# ----------------------------------------------------------------------
class TestMonitoringSplit:
    def test_stats_expose_split_and_cache(self, model, requests):
        monitor = ServiceMonitor(RTPService(model, cache_size=4))
        monitor.handle(requests[0])
        monitor.handle(requests[0])
        monitor.handle_batch(requests[:3])
        stats = monitor.stats()
        assert stats.queries == 5
        assert stats.mean_build_ms >= 0.0
        assert stats.mean_infer_ms > 0.0
        assert stats.cache_hits == 2        # repeat handle + batch member
        assert stats.cache_misses == 3
        metrics = monitor.render_metrics()
        assert "rtp_build_ms_sum" in metrics
        assert "rtp_infer_ms_sum" in metrics
        assert "rtp_cache_hits_total 2" in metrics
        assert "rtp_cache_misses_total 3" in metrics

    def test_reset_clears_split(self, model, requests):
        monitor = ServiceMonitor(RTPService(model))
        monitor.handle(requests[0])
        monitor.reset()
        stats = monitor.stats()
        assert stats.queries == 0
        assert stats.mean_build_ms == 0.0 and stats.mean_infer_ms == 0.0


# ----------------------------------------------------------------------
# Benchmark smoke mode (CI-sized)
# ----------------------------------------------------------------------
def test_bench_smoke_mode(tmp_path, monkeypatch):
    """The benchmark's --smoke mode runs quickly and reports parity OK."""
    import pathlib
    monkeypatch.syspath_prepend(
        str(pathlib.Path(__file__).resolve().parents[1] / "benchmarks"))
    import bench_batched_inference as bench

    monkeypatch.setattr(bench, "RESULTS_DIR", tmp_path)
    report = bench.run(num_requests=8, batch_size=4, smoke=True)
    assert "mode=smoke" in report
    assert "parity" in report and "FAILED" not in report
    assert (tmp_path / "batched_inference_smoke.txt").exists()


# ----------------------------------------------------------------------
# MicroBatcher edge cases: semantics the resilience layer builds on
# ----------------------------------------------------------------------
class TestMicroBatcherEdgeCases:
    def test_flush_on_empty_queue_is_noop(self, service):
        batcher = MicroBatcher(service)
        assert batcher.flush() == 0
        assert batcher.batches_flushed == 0
        assert batcher.requests_flushed == 0

    def test_ticket_result_read_twice_returns_same_response(self, service,
                                                            requests):
        batcher = MicroBatcher(service, max_batch_size=1)
        ticket = batcher.submit(requests[0])
        assert ticket.done
        first = ticket.result()
        second = ticket.result()
        assert first is second
        np.testing.assert_array_equal(first.route, second.route)

    def test_submit_after_poll_drained_queue(self, service, requests):
        clock = FakeClock()
        batcher = MicroBatcher(service, max_batch_size=8, max_wait_ms=5.0,
                               clock=clock)
        first = batcher.submit(requests[0])
        clock.advance_ms(6.0)
        assert batcher.poll() == 1
        assert first.done and batcher.pending == 0
        # A poll right after the drain is a no-op, and a fresh submit
        # starts a new batch with a fresh wait window.
        assert batcher.poll() == 0
        second = batcher.submit(requests[1])
        assert not second.done and batcher.pending == 1
        assert batcher.poll() == 0          # window not yet aged out
        clock.advance_ms(6.0)
        assert batcher.poll() == 1
        assert second.done
        assert batcher.batches_flushed == 2
        assert batcher.requests_flushed == 2


# ----------------------------------------------------------------------
# GraphCache counters in the shared metrics exposition
# ----------------------------------------------------------------------
class TestGraphCacheMetricsExport:
    def test_eviction_counting(self):
        cache = GraphCache(max_size=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        assert cache.evictions == 1
        assert cache.keys() == ["b", "c"]
        cache.clear()
        assert cache.evictions == 0

    def test_counters_rendered_through_monitor_registry(self, model,
                                                        requests):
        monitor = ServiceMonitor(RTPService(model, cache_size=2))
        monitor.handle(requests[0])      # miss
        monitor.handle(requests[0])      # hit
        monitor.handle(requests[1])      # miss
        monitor.handle(requests[2])      # miss -> evicts requests[0]
        text = monitor.render_metrics()
        assert "rtp_graph_cache_hits_total 1" in text
        assert "rtp_graph_cache_misses_total 3" in text
        assert "rtp_graph_cache_evictions_total 1" in text
        assert "rtp_graph_cache_size 2" in text

    def test_bind_backfills_preexisting_counts(self, model, requests):
        from repro.obs import MetricsRegistry
        service = RTPService(model, cache_size=4)
        service.handle(requests[0])
        service.handle(requests[0])
        registry = MetricsRegistry()
        service.cache.bind_registry(registry)
        text = registry.render()
        assert "rtp_graph_cache_hits_total 1" in text
        assert "rtp_graph_cache_misses_total 1" in text

    def test_unbound_cache_keeps_local_counts_only(self, model, requests):
        service = RTPService(model, cache_size=4)
        service.handle(requests[0])
        service.handle(requests[0])
        assert service.cache.hits == 1
        assert service.cache.misses == 1
        assert service.cache.evictions == 0


# ----------------------------------------------------------------------
# Timer-edge regression: flush at *exactly* the deadline
# ----------------------------------------------------------------------
class TestMicroBatcherTimerEdge:
    """``poll`` must flush when ``waited_ms == max_wait_ms`` exactly.

    The latency bound is inclusive: a request that has waited exactly
    ``max_wait_ms`` has hit its deadline and must go out *now*, not on
    the next poll tick.  The values below (250 ms = 0.25 s) are exact
    binary fractions, so ``(clock() - enqueued_at) * 1000.0`` lands on
    the boundary with no floating-point slack — an accidental ``>``
    instead of ``>=`` in ``poll`` fails these tests deterministically.
    """

    def make(self, service, max_wait_ms=250.0):
        clock = FakeClock()
        batcher = MicroBatcher(service, max_batch_size=100,
                               max_wait_ms=max_wait_ms, clock=clock)
        return batcher, clock

    def test_flushes_exactly_at_deadline(self, service, requests):
        batcher, clock = self.make(service)
        ticket = batcher.submit(requests[0])   # partially-filled batch
        clock.advance_ms(125.0)                # now = 0.125 s, exact
        assert batcher.poll() == 0
        assert not ticket.done
        clock.advance_ms(125.0)                # now = 0.25 s: waited
        assert batcher.poll() == 1             # exactly 250.0 ms
        assert ticket.done
        assert batcher.batches_flushed == 1
        assert batcher.pending == 0

    def test_just_under_deadline_does_not_flush(self, service, requests):
        batcher, clock = self.make(service)
        ticket = batcher.submit(requests[0])
        clock.advance_ms(249.0)
        assert batcher.poll() == 0
        assert not ticket.done
        clock.advance_ms(1.0)                  # reaches the deadline
        assert batcher.poll() == 1
        assert ticket.done

    def test_zero_wait_flushes_on_first_poll(self, service, requests):
        """``max_wait_ms == 0`` means no batching delay at all: the very
        first poll flushes even with zero elapsed time (0 >= 0)."""
        batcher, clock = self.make(service, max_wait_ms=0.0)
        ticket = batcher.submit(requests[0])
        assert batcher.poll() == 1             # no clock advance at all
        assert ticket.done

    def test_oldest_request_governs_the_deadline(self, service, requests):
        """A younger request must not reset the timer: the flush happens
        at the *oldest* ticket's deadline and takes everyone with it."""
        batcher, clock = self.make(service)
        first = batcher.submit(requests[0])
        clock.advance_ms(125.0)
        second = batcher.submit(requests[1])   # younger, waited 125 less
        clock.advance_ms(125.0)                # first hits 250.0 exactly
        assert batcher.poll() == 2             # both flush together
        assert first.done and second.done
        assert batcher.batches_flushed == 1
        assert batcher.requests_flushed == 2
