"""Tests for the dynamic courier-day simulator."""

import numpy as np
import pytest

from repro.data import DynamicDaySimulator, GeneratorConfig, SyntheticWorld


@pytest.fixture(scope="module")
def dynamic_day(world):
    simulator = DynamicDaySimulator(world, courier_index=1, seed=7)
    return simulator.simulate()


class TestDynamicDay:
    def test_starts_with_start_event(self, dynamic_day):
        assert dynamic_day.event_kinds[0] == "start"
        assert len(dynamic_day) == len(dynamic_day.event_kinds)

    def test_all_snapshots_validate(self, dynamic_day):
        for snapshot in dynamic_day.snapshots:
            snapshot.validate()

    def test_clock_monotone(self, dynamic_day):
        times = [s.request_time for s in dynamic_day.snapshots]
        assert all(a <= b + 1e-9 for a, b in zip(times, times[1:]))

    def test_pickups_shrink_order_set(self, dynamic_day):
        for previous, current, kind in zip(dynamic_day.snapshots,
                                           dynamic_day.snapshots[1:],
                                           dynamic_day.event_kinds[1:]):
            if kind == "pickup":
                assert current.num_locations == previous.num_locations - 1
            elif kind == "arrival":
                assert current.num_locations > previous.num_locations

    def test_arrival_events_present(self, dynamic_day):
        assert "arrival" in dynamic_day.event_kinds
        assert "pickup" in dynamic_day.event_kinds

    def test_location_ids_unique_within_snapshot(self, dynamic_day):
        for snapshot in dynamic_day.snapshots:
            ids = [loc.location_id for loc in snapshot.locations]
            assert len(ids) == len(set(ids))

    def test_deterministic_given_seed(self, world):
        a = DynamicDaySimulator(world, courier_index=0, seed=13).simulate()
        b = DynamicDaySimulator(world, courier_index=0, seed=13).simulate()
        assert len(a) == len(b)
        for x, y in zip(a.snapshots, b.snapshots):
            assert np.array_equal(x.route, y.route)

    def test_invalid_configuration(self, world):
        with pytest.raises(ValueError):
            DynamicDaySimulator(world, initial_orders=1,
                                min_snapshot_orders=3)

    def test_snapshots_are_model_ready(self, dynamic_day, builder):
        """Every snapshot must pass through the full feature pipeline."""
        from repro.core import M2G4RTP, M2G4RTPConfig
        model = M2G4RTP(M2G4RTPConfig(hidden_dim=16, num_heads=2,
                                      num_encoder_layers=1))
        snapshot = dynamic_day.snapshots[0]
        output = model.predict(builder.build(snapshot))
        assert sorted(output.route.tolist()) == list(
            range(snapshot.num_locations))
