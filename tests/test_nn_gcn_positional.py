"""Tests for the GCN layer and sinusoidal positional encodings."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.autodiff import Tensor
from repro.nn import (
    GCN,
    GCNLayer,
    normalize_adjacency,
    position_encoding_table,
    sinusoidal_position_encoding,
)


class TestNormalizeAdjacency:
    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            normalize_adjacency(np.ones((2, 3)))

    def test_symmetric_output_for_symmetric_input(self, rng):
        adjacency = rng.random((5, 5)) > 0.5
        adjacency = adjacency | adjacency.T
        normalized = normalize_adjacency(adjacency)
        assert np.allclose(normalized, normalized.T)

    def test_isolated_node_keeps_self_loop(self):
        adjacency = np.zeros((3, 3))
        normalized = normalize_adjacency(adjacency)
        assert np.allclose(normalized, np.eye(3))

    def test_row_sums_bounded(self, rng):
        adjacency = (rng.random((6, 6)) > 0.4).astype(float)
        adjacency = np.maximum(adjacency, adjacency.T)
        normalized = normalize_adjacency(adjacency)
        assert np.all(normalized >= 0)
        # Symmetric normalisation keeps spectral radius <= 1.
        eigenvalues = np.linalg.eigvalsh(normalized)
        assert eigenvalues.max() <= 1.0 + 1e-9


class TestGCN:
    def test_layer_shape(self, rng):
        layer = GCNLayer(4, 6, rng)
        adjacency = normalize_adjacency(np.eye(5))
        assert layer(Tensor(np.zeros((5, 4))), adjacency).shape == (5, 6)

    def test_stack_shape_and_gradients(self, rng):
        gcn = GCN(4, 8, num_layers=2, rng=rng)
        x = Tensor(rng.normal(size=(5, 4)), requires_grad=True)
        adjacency = (rng.random((5, 5)) > 0.5)
        adjacency = adjacency | adjacency.T
        out = gcn(x, adjacency)
        assert out.shape == (5, 8)
        (out ** 2).sum().backward()
        assert x.grad is not None

    def test_information_propagates_along_edges(self, rng):
        gcn = GCN(2, 4, num_layers=2, rng=rng)
        adjacency = np.zeros((3, 3), dtype=bool)
        adjacency[0, 1] = adjacency[1, 0] = True
        x = np.zeros((3, 2))
        base = gcn(Tensor(x), adjacency).data.copy()
        x2 = x.copy()
        x2[0] += 1.0
        moved = gcn(Tensor(x2), adjacency).data
        # Node 1 is connected to node 0, node 2 is not.
        assert not np.allclose(base[1], moved[1])
        assert np.allclose(base[2], moved[2])


class TestPositionalEncoding:
    def test_values_match_formula(self):
        encoding = sinusoidal_position_encoding(3, 4)
        assert np.isclose(encoding[0], np.sin(3 / 10000 ** 0.0))
        assert np.isclose(encoding[1], np.cos(3 / 10000 ** 0.0))
        assert np.isclose(encoding[2], np.sin(3 / 10000 ** 0.5))

    def test_rejects_zero_position(self):
        with pytest.raises(ValueError):
            sinusoidal_position_encoding(0, 4)

    def test_rejects_zero_dim(self):
        with pytest.raises(ValueError):
            sinusoidal_position_encoding(1, 0)

    def test_odd_dim_supported(self):
        assert sinusoidal_position_encoding(2, 5).shape == (5,)

    def test_table_rows(self):
        table = position_encoding_table(6, 8)
        assert table.shape == (6, 8)
        assert np.allclose(table[0], sinusoidal_position_encoding(1, 8))
        assert np.allclose(table[5], sinusoidal_position_encoding(6, 8))

    @given(st.integers(1, 100), st.integers(2, 32))
    @settings(max_examples=40, deadline=None)
    def test_values_bounded(self, position, dim):
        encoding = sinusoidal_position_encoding(position, dim)
        assert np.all(np.abs(encoding) <= 1.0)

    def test_distinct_positions_distinct_codes(self):
        a = sinusoidal_position_encoding(1, 16)
        b = sinusoidal_position_encoding(2, 16)
        assert not np.allclose(a, b)
