"""Pinned mixture-gate verdicts for three canned students.

The :class:`repro.online.AntiRegressionGate` scores every candidate on
a **mixture holdout**: the recent (possibly shifted) slice measures
adaptation, the frozen clean slice measures what the adaptation cost
the old regime.  This suite pins the verdict — pass/fail, reason
prefix and which leg decided — for the three canonical students:

* **clean-preserving** — a light fine-tune on in-distribution data:
  passes both legs; the reason records the mixture verdict;
* **forgetting** — a fine-tune on a feature-inseparable +480-minute
  shift with no replay: wins the drift leg decisively, craters the
  clean slice, and is rejected with the ``forgetting:`` reason;
* **poisoned** — a fine-tune on noise-corrupted ground truth: never
  clears the drift improvement bar, rejected on the shifted leg
  before the clean budget is even consulted.

Also pinned: the gate's back-compat contract (no clean slice → NaN
clean fields, verdict decided by the shifted leg alone) and the
``max_clean_regression_ratio=None`` escape hatch.
"""

import dataclasses
import math

import numpy as np
import pytest

from repro.data import GeneratorConfig, SyntheticWorld
from repro.deploy import ModelRegistry
from repro.load.scenarios import small_model
from repro.load.stream import build_instance_pool
from repro.online import (AntiRegressionGate, GateConfig, OnlineTrainer,
                          OnlineTrainerConfig)


def _shift_instance(instance, minutes):
    return dataclasses.replace(
        instance,
        arrival_times=np.asarray(instance.arrival_times,
                                 dtype=np.float64) + minutes,
        aoi_arrival_times=np.asarray(instance.aoi_arrival_times,
                                     dtype=np.float64) + minutes)


def _poison_instance(instance, rng):
    noisy = np.sort(rng.uniform(2000.0, 10000.0,
                                size=len(instance.arrival_times)))
    aoi_noisy = np.sort(rng.uniform(2000.0, 10000.0,
                                    size=len(instance.aoi_arrival_times)))
    return dataclasses.replace(instance, arrival_times=noisy,
                               aoi_arrival_times=aoi_noisy)


@pytest.fixture(scope="module")
def world_instances():
    world = SyntheticWorld(GeneratorConfig(
        num_aois=40, num_couriers=6, num_days=4,
        instances_per_courier_day=2, seed=7))
    return build_instance_pool(world, 24, seed=8)


@pytest.fixture(scope="module")
def rig(tmp_path_factory, world_instances):
    """Parent model + the three canned students, trained once."""
    root = tmp_path_factory.mktemp("gate-rig")
    registry = ModelRegistry(root / "reg")
    parent = small_model(17, 16)
    manifest = registry.register(parent, created_at="t0")
    trainer = OnlineTrainer(registry, root / "jobs", OnlineTrainerConfig())

    instances = world_instances
    clean_holdout = instances[:6]          # the frozen pre-shift slice
    clean_train = instances[6:18]
    recent_clean_holdout = instances[18:]  # recent slice, no shift
    shifted_train = [_shift_instance(i, 480.0) for i in clean_train]
    shifted_holdout = [_shift_instance(i, 480.0)
                       for i in recent_clean_holdout]
    poison_rng = np.random.default_rng(23)
    poisoned_train = [_poison_instance(i, poison_rng) for i in clean_train]
    poisoned_holdout = [_poison_instance(i, poison_rng)
                        for i in recent_clean_holdout]

    preserving = trainer.fine_tune(manifest.version, clean_train,
                                   job_id="preserve").model
    forgetting = trainer.fine_tune(manifest.version, shifted_train,
                                   job_id="forget").model
    poisoned = trainer.fine_tune(manifest.version, poisoned_train,
                                 job_id="poison").model
    return {
        "parent": parent,
        "preserving": preserving,
        "forgetting": forgetting,
        "poisoned": poisoned,
        "clean_holdout": clean_holdout,
        "recent_clean_holdout": recent_clean_holdout,
        "shifted_holdout": shifted_holdout,
        "poisoned_holdout": poisoned_holdout,
    }


class TestMixtureGateVerdicts:
    def test_clean_preserving_student_passes(self, rig):
        gate = AntiRegressionGate()
        result = gate.evaluate(rig["parent"], rig["preserving"],
                               rig["recent_clean_holdout"],
                               trigger_kind="watermark",
                               clean_holdout=rig["clean_holdout"])
        assert result.passed is True
        assert "clean-holdout ratio" in result.reason
        assert result.mae_ratio <= result.threshold
        assert result.clean_mae_ratio <= result.clean_threshold
        assert result.clean_holdout_size == 6
        assert math.isfinite(result.clean_parent_mae)
        assert math.isfinite(result.clean_student_mae)

    def test_forgetting_student_rejected_on_clean_leg(self, rig):
        gate = AntiRegressionGate()
        result = gate.evaluate(rig["parent"], rig["forgetting"],
                               rig["shifted_holdout"],
                               trigger_kind="drift",
                               clean_holdout=rig["clean_holdout"])
        assert result.passed is False
        assert result.reason.startswith("forgetting:")
        # The drift leg alone would have shipped it.
        assert result.mae_ratio <= result.threshold
        assert result.clean_mae_ratio > result.clean_threshold
        assert result.clean_threshold == pytest.approx(1.5)

    def test_poisoned_student_rejected_on_shifted_leg(self, rig):
        gate = AntiRegressionGate()
        result = gate.evaluate(rig["parent"], rig["poisoned"],
                               rig["poisoned_holdout"],
                               trigger_kind="drift",
                               clean_holdout=rig["clean_holdout"])
        assert result.passed is False
        assert not result.reason.startswith("forgetting:"), (
            "poison must fail the drift improvement bar, which is "
            "checked before the forgetting budget")
        assert result.mae_ratio > result.threshold

    def test_no_clean_slice_is_backwards_compatible(self, rig):
        gate = AntiRegressionGate()
        result = gate.evaluate(rig["parent"], rig["forgetting"],
                               rig["shifted_holdout"],
                               trigger_kind="drift")
        # Without a clean slice the forgetting student sails through —
        # exactly the pre-mixture behaviour.
        assert result.passed is True
        assert result.clean_holdout_size == 0
        assert math.isnan(result.clean_parent_mae)
        assert math.isnan(result.clean_student_mae)
        assert math.isnan(result.clean_mae_ratio)
        assert result.clean_threshold == 0.0

    def test_budget_none_disables_clean_leg(self, rig):
        gate = AntiRegressionGate(
            GateConfig(max_clean_regression_ratio=None))
        result = gate.evaluate(rig["parent"], rig["forgetting"],
                               rig["shifted_holdout"],
                               trigger_kind="drift",
                               clean_holdout=rig["clean_holdout"])
        assert result.passed is True
        assert result.clean_holdout_size == 0

    def test_budget_validated(self):
        with pytest.raises(ValueError):
            GateConfig(max_clean_regression_ratio=0.5)

    def test_verdicts_are_deterministic(self, rig):
        gate = AntiRegressionGate()
        first = gate.evaluate(rig["parent"], rig["forgetting"],
                              rig["shifted_holdout"], trigger_kind="drift",
                              clean_holdout=rig["clean_holdout"])
        second = gate.evaluate(rig["parent"], rig["forgetting"],
                               rig["shifted_holdout"], trigger_kind="drift",
                               clean_holdout=rig["clean_holdout"])
        assert dataclasses.asdict(first) == dataclasses.asdict(second)
