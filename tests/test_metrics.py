"""Unit + property tests for route and time metrics (Eqs. 42-45)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.metrics import (
    MetricReport,
    RoutePrediction,
    TimePrediction,
    accuracy_within,
    combined_report,
    evaluate_route_predictions,
    evaluate_time_predictions,
    hit_rate_at_k,
    kendall_rank_correlation,
    location_square_deviation,
    mae,
    ranks_from_route,
    rmse,
)

permutations = st.integers(2, 12).flatmap(
    lambda n: st.permutations(list(range(n))))


class TestRanks:
    def test_ranks_inverse(self):
        assert ranks_from_route([2, 0, 1]).tolist() == [1, 2, 0]

    def test_rejects_non_permutation(self):
        with pytest.raises(ValueError):
            ranks_from_route([0, 0, 2])


class TestHitRate:
    def test_identical_routes(self):
        assert hit_rate_at_k([0, 1, 2, 3], [0, 1, 2, 3], 3) == 1.0

    def test_disjoint_prefixes(self):
        assert hit_rate_at_k([0, 1, 2, 3, 4, 5],
                             [3, 4, 5, 0, 1, 2], 3) == 0.0

    def test_set_semantics(self):
        # Same first-3 set in different order counts fully.
        assert hit_rate_at_k([0, 1, 2, 3], [2, 1, 0, 3], 3) == 1.0

    def test_partial_overlap(self):
        assert hit_rate_at_k([0, 1, 2, 3], [0, 3, 2, 1], 3) == pytest.approx(2 / 3)

    def test_k_clipped_to_length(self):
        assert hit_rate_at_k([1, 0], [1, 0], 3) == 1.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            hit_rate_at_k([0, 1], [0, 1, 2], 3)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            hit_rate_at_k([0, 1], [0, 1], 0)

    @given(permutations)
    @settings(max_examples=40, deadline=None)
    def test_self_hit_rate_is_one(self, route):
        assert hit_rate_at_k(route, list(route), 3) == 1.0


class TestKRC:
    def test_identical_is_one(self):
        assert kendall_rank_correlation([0, 1, 2, 3], [0, 1, 2, 3]) == 1.0

    def test_reversed_is_minus_one(self):
        assert kendall_rank_correlation([3, 2, 1, 0], [0, 1, 2, 3]) == -1.0

    def test_singleton_convention(self):
        assert kendall_rank_correlation([0], [0]) == 1.0

    def test_known_value(self):
        # pred [0,2,1,3] vs true [0,1,2,3]: one discordant pair of six.
        value = kendall_rank_correlation([0, 2, 1, 3], [0, 1, 2, 3])
        assert np.isclose(value, (5 - 1) / 6)

    def test_symmetry(self):
        a, b = [2, 0, 3, 1], [0, 1, 2, 3]
        assert np.isclose(kendall_rank_correlation(a, b),
                          kendall_rank_correlation(b, a))

    @given(permutations)
    @settings(max_examples=40, deadline=None)
    def test_bounded(self, route):
        rng = np.random.default_rng(len(route))
        other = rng.permutation(len(route)).tolist()
        value = kendall_rank_correlation(route, other)
        assert -1.0 <= value <= 1.0

    @given(permutations)
    @settings(max_examples=40, deadline=None)
    def test_reversal_negates(self, route):
        rng = np.random.default_rng(len(route) + 7)
        other = rng.permutation(len(route)).tolist()
        forward = kendall_rank_correlation(route, other)
        backward = kendall_rank_correlation(list(reversed(route)), other)
        assert np.isclose(forward, -backward)


class TestLSD:
    def test_zero_iff_identical(self):
        assert location_square_deviation([1, 0, 2], [1, 0, 2]) == 0.0

    def test_known_value(self):
        # pred [1,0] vs true [0,1]: each location off by one position.
        assert location_square_deviation([1, 0], [0, 1]) == 1.0

    def test_nonnegative_property(self):
        rng = np.random.default_rng(3)
        for _ in range(20):
            n = rng.integers(2, 10)
            a, b = rng.permutation(n), rng.permutation(n)
            assert location_square_deviation(a, b) >= 0

    @given(permutations)
    @settings(max_examples=40, deadline=None)
    def test_symmetric(self, route):
        rng = np.random.default_rng(len(route) + 3)
        other = rng.permutation(len(route)).tolist()
        assert np.isclose(location_square_deviation(route, other),
                          location_square_deviation(other, route))


class TestTimeMetrics:
    def test_rmse_known(self):
        assert rmse([0.0, 0.0], [3.0, 4.0]) == pytest.approx(np.sqrt(12.5))

    def test_mae_known(self):
        assert mae([0.0, 0.0], [3.0, 4.0]) == 3.5

    def test_rmse_at_least_mae(self):
        rng = np.random.default_rng(0)
        predicted = rng.normal(size=50)
        actual = rng.normal(size=50)
        assert rmse(predicted, actual) >= mae(predicted, actual)

    def test_accuracy_within(self):
        assert accuracy_within([0, 0, 0], [5, 25, 19.9], 20) == pytest.approx(2 / 3)

    def test_accuracy_threshold_validation(self):
        with pytest.raises(ValueError):
            accuracy_within([0.0], [0.0], 0.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            rmse([1.0], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mae([], [])


class TestReports:
    def test_route_aggregation(self):
        predictions = [
            RoutePrediction(np.array([0, 1, 2]), np.array([0, 1, 2])),
            RoutePrediction(np.array([2, 1, 0]), np.array([0, 1, 2])),
        ]
        result = evaluate_route_predictions(predictions)
        assert result["hr@3"] == 100.0  # set semantics at k=n
        assert np.isclose(result["krc"], 0.0)

    def test_time_pooling(self):
        predictions = [
            TimePrediction(np.array([0.0]), np.array([10.0])),
            TimePrediction(np.array([0.0, 0.0]), np.array([30.0, 30.0])),
        ]
        result = evaluate_time_predictions(predictions)
        # Pooled MAE over 3 locations: (10+30+30)/3.
        assert np.isclose(result["rmse"], np.sqrt((100 + 900 + 900) / 3))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            evaluate_route_predictions([])
        with pytest.raises(ValueError):
            evaluate_time_predictions([])

    def test_combined_report_rows(self):
        report = combined_report(
            [RoutePrediction(np.array([0, 1]), np.array([0, 1]))],
            [TimePrediction(np.array([5.0, 5.0]), np.array([5.0, 10.0]))],
        )
        assert isinstance(report, MetricReport)
        assert report.hr_at_3 == 100.0
        assert report.acc_at_20 == 100.0
        assert len(report.route_row().split()) == 3
        assert len(report.time_row().split()) == 3
        assert report.as_dict()["num_instances"] == 1
