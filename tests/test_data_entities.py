"""Tests for domain entities, distances and instance invariants."""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data import (
    AOI,
    Courier,
    Location,
    RTPInstance,
    geo_distance_meters,
    pairwise_distance_matrix,
)


def make_courier(**overrides):
    defaults = dict(courier_id=1, speed=200.0, working_hours=8.0,
                    attendance_rate=0.95, service_time_mean=3.0,
                    aoi_type_preference=(0, 1, 2, 3, 4, 5))
    defaults.update(overrides)
    return Courier(**defaults)


def make_instance(n=3, same_aoi=True):
    aoi = AOI(aoi_id=7, aoi_type=1, center=(120.1, 30.2))
    aois = [aoi]
    locations = [
        Location(location_id=i, coord=(120.1 + i * 1e-3, 30.2),
                 aoi_id=7, accept_time=400.0, deadline=550.0)
        for i in range(n)
    ]
    return RTPInstance(
        courier=make_courier(),
        request_time=480.0,
        courier_position=(120.1, 30.2),
        locations=locations,
        aois=aois,
        route=np.arange(n),
        arrival_times=np.linspace(5, 30, n),
        aoi_route=np.array([0]),
        aoi_arrival_times=np.array([5.0]),
    )


class TestDistances:
    def test_zero_distance(self):
        assert geo_distance_meters(120.0, 30.0, 120.0, 30.0) == 0.0

    def test_one_degree_latitude(self):
        distance = geo_distance_meters(120.0, 30.0, 120.0, 31.0)
        assert 110_000 < distance < 112_000

    def test_symmetric(self):
        a = geo_distance_meters(120.0, 30.0, 120.3, 30.2)
        b = geo_distance_meters(120.3, 30.2, 120.0, 30.0)
        assert np.isclose(a, b)

    def test_pairwise_matrix_matches_scalar(self):
        coords = np.array([[120.0, 30.0], [120.1, 30.1], [120.2, 30.0]])
        matrix = pairwise_distance_matrix(coords)
        assert matrix.shape == (3, 3)
        assert np.allclose(np.diag(matrix), 0.0)
        assert np.isclose(matrix[0, 1],
                          geo_distance_meters(120.0, 30.0, 120.1, 30.1))

    @given(st.floats(119.9, 120.4), st.floats(30.0, 30.5),
           st.floats(119.9, 120.4), st.floats(30.0, 30.5))
    @settings(max_examples=50, deadline=None)
    def test_triangle_inequality_through_midpoint(self, lon1, lat1, lon2, lat2):
        mid_lon, mid_lat = (lon1 + lon2) / 2, (lat1 + lat2) / 2
        direct = geo_distance_meters(lon1, lat1, lon2, lat2)
        detour = (geo_distance_meters(lon1, lat1, mid_lon, mid_lat)
                  + geo_distance_meters(mid_lon, mid_lat, lon2, lat2))
        assert direct <= detour + 1e-6


class TestEntities:
    def test_courier_profile_features(self):
        courier = make_courier(working_hours=8.0, speed=200.0,
                               attendance_rate=0.9)
        assert np.allclose(courier.profile_features(), [8.0, 200.0, 0.9])

    def test_aoi_distance_to(self):
        aoi = AOI(aoi_id=1, aoi_type=0, center=(120.0, 30.0))
        assert aoi.distance_to(120.0, 30.0) == 0.0

    def test_location_frozen(self):
        location = Location(1, (120.0, 30.0), 1, 400.0, 500.0)
        with pytest.raises(dataclasses.FrozenInstanceError):
            location.deadline = 600.0


class TestInstanceInvariants:
    def test_valid_instance_passes(self):
        make_instance()

    def test_route_must_be_permutation(self):
        instance = make_instance()
        with pytest.raises(ValueError):
            dataclasses.replace(instance, route=np.array([0, 0, 2]))

    def test_arrival_times_length(self):
        instance = make_instance()
        with pytest.raises(ValueError):
            dataclasses.replace(instance, arrival_times=np.array([1.0]))

    def test_negative_arrival_rejected(self):
        instance = make_instance()
        with pytest.raises(ValueError):
            dataclasses.replace(instance,
                                arrival_times=np.array([-1.0, 2.0, 3.0]))

    def test_unknown_aoi_rejected(self):
        instance = make_instance()
        bad_location = Location(9, (120.1, 30.2), aoi_id=999,
                                accept_time=400.0, deadline=550.0)
        with pytest.raises(ValueError):
            dataclasses.replace(
                instance, locations=instance.locations[:-1] + [bad_location])

    def test_empty_instance_rejected(self):
        instance = make_instance()
        with pytest.raises(ValueError):
            dataclasses.replace(
                instance, locations=[], route=np.array([], dtype=int),
                arrival_times=np.array([]))

    def test_location_ranks_inverse_of_route(self, dataset):
        instance = dataset[0]
        ranks = instance.location_ranks()
        assert np.array_equal(np.argsort(ranks), instance.route)

    def test_aoi_ranks_inverse_of_aoi_route(self, dataset):
        instance = dataset[0]
        ranks = instance.aoi_ranks()
        assert np.array_equal(np.argsort(ranks), instance.aoi_route)

    def test_aoi_index_of_location_consistent(self, dataset):
        instance = dataset[0]
        mapping = instance.aoi_index_of_location()
        for loc, aoi_index in zip(instance.locations, mapping):
            assert instance.aois[aoi_index].aoi_id == loc.aoi_id

    def test_describe_contains_counts(self):
        instance = make_instance()
        text = instance.describe()
        assert "n=3" in text and "m=1" in text
