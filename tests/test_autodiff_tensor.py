"""Unit tests for the autodiff Tensor: forward values and gradients."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.autodiff import Tensor, check_gradients, no_grad, is_grad_enabled


def t(data, grad=True):
    return Tensor(np.asarray(data, dtype=float), requires_grad=grad)


class TestForwardValues:
    def test_add(self):
        assert np.allclose((t([1, 2]) + t([3, 4])).data, [4, 6])

    def test_add_scalar(self):
        assert np.allclose((t([1, 2]) + 1.5).data, [2.5, 3.5])

    def test_radd(self):
        assert np.allclose((1.5 + t([1, 2])).data, [2.5, 3.5])

    def test_sub(self):
        assert np.allclose((t([5, 7]) - t([1, 2])).data, [4, 5])

    def test_rsub(self):
        assert np.allclose((10 - t([1, 2])).data, [9, 8])

    def test_mul(self):
        assert np.allclose((t([2, 3]) * t([4, 5])).data, [8, 15])

    def test_div(self):
        assert np.allclose((t([8, 9]) / t([2, 3])).data, [4, 3])

    def test_rdiv(self):
        assert np.allclose((6 / t([2, 3])).data, [3, 2])

    def test_neg(self):
        assert np.allclose((-t([1, -2])).data, [-1, 2])

    def test_pow(self):
        assert np.allclose((t([2, 3]) ** 2).data, [4, 9])

    def test_pow_non_scalar_rejected(self):
        with pytest.raises(TypeError):
            t([2.0]) ** t([2.0])

    def test_matmul_2d(self):
        a = t([[1, 2], [3, 4]])
        b = t([[5, 6], [7, 8]])
        assert np.allclose((a @ b).data, [[19, 22], [43, 50]])

    def test_matmul_vec(self):
        assert np.allclose((t([[1, 2], [3, 4]]) @ t([1, 1])).data, [3, 7])

    def test_sum_all(self):
        assert t([[1, 2], [3, 4]]).sum().item() == 10

    def test_sum_axis(self):
        assert np.allclose(t([[1, 2], [3, 4]]).sum(axis=0).data, [4, 6])

    def test_mean(self):
        assert t([[1, 2], [3, 4]]).mean().item() == 2.5

    def test_mean_axis(self):
        assert np.allclose(t([[1, 2], [3, 4]]).mean(axis=1).data, [1.5, 3.5])

    def test_max(self):
        assert t([1, 5, 3]).max().item() == 5

    def test_relu(self):
        assert np.allclose(t([-1, 0, 2]).relu().data, [0, 0, 2])

    def test_leaky_relu(self):
        assert np.allclose(t([-10.0, 2.0]).leaky_relu(0.1).data, [-1.0, 2.0])

    def test_abs(self):
        assert np.allclose(t([-3, 4]).abs().data, [3, 4])

    def test_tanh_sigmoid_exp_log(self):
        x = np.array([0.3, -0.7])
        assert np.allclose(t(x).tanh().data, np.tanh(x))
        assert np.allclose(t(x).sigmoid().data, 1 / (1 + np.exp(-x)))
        assert np.allclose(t(x).exp().data, np.exp(x))
        assert np.allclose(t([1.0, 2.0]).log().data, np.log([1.0, 2.0]))

    def test_sqrt(self):
        assert np.allclose(t([4.0, 9.0]).sqrt().data, [2, 3])

    def test_reshape_and_flatten(self):
        x = t([[1, 2], [3, 4]])
        assert x.reshape(4).shape == (4,)
        assert x.flatten().shape == (4,)
        assert x.reshape(1, 4).shape == (1, 4)

    def test_transpose(self):
        x = t(np.arange(6).reshape(2, 3))
        assert x.T.shape == (3, 2)
        assert np.allclose(x.T.data, x.data.T)

    def test_getitem(self):
        x = t([[1, 2], [3, 4]])
        assert np.allclose(x[0].data, [1, 2])
        assert x[1, 1].item() == 4

    def test_getitem_fancy(self):
        x = t([10, 20, 30])
        assert np.allclose(x[np.array([2, 0])].data, [30, 10])

    def test_len_and_repr(self):
        x = t([[1, 2], [3, 4]])
        assert len(x) == 2
        assert "Tensor" in repr(x)

    def test_zeros_ones(self):
        assert np.allclose(Tensor.zeros(2, 3).data, np.zeros((2, 3)))
        assert np.allclose(Tensor.ones(2).data, np.ones(2))

    def test_item_non_scalar_ok_for_size1(self):
        assert Tensor(np.array([[3.0]])).item() == 3.0


class TestBackward:
    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_backward_nonscalar_needs_seed(self):
        x = t([1.0, 2.0])
        with pytest.raises(RuntimeError):
            (x * 2).backward()

    def test_simple_chain(self):
        x = t([2.0])
        y = (x * 3 + 1) ** 2
        y.backward()
        # d/dx (3x+1)^2 = 2*(3x+1)*3 = 42 at x=2
        assert np.allclose(x.grad, [42.0])

    def test_grad_accumulates_across_uses(self):
        x = t([1.0])
        y = x * 2 + x * 3
        y.backward()
        assert np.allclose(x.grad, [5.0])

    def test_zero_grad(self):
        x = t([1.0])
        (x * 2).backward()
        x.zero_grad()
        assert x.grad is None

    def test_broadcast_add_grad(self):
        x = t(np.ones((3, 2)))
        b = t(np.zeros(2))
        (x + b).sum().backward()
        assert np.allclose(b.grad, [3.0, 3.0])

    def test_broadcast_mul_grad(self):
        x = t(np.full((2, 3), 2.0))
        s = t([3.0])
        (x * s).sum().backward()
        assert np.allclose(s.grad, [12.0])

    @pytest.mark.parametrize("op", [
        lambda a, b: a + b,
        lambda a, b: a - b,
        lambda a, b: a * b,
        lambda a, b: a / b,
        lambda a, b: a @ b,
    ])
    def test_binary_op_gradcheck(self, op, rng):
        a = Tensor(rng.uniform(0.5, 2.0, (3, 3)), requires_grad=True)
        b = Tensor(rng.uniform(0.5, 2.0, (3, 3)), requires_grad=True)
        check_gradients(lambda: op(a, b).sum(), [a, b])

    @pytest.mark.parametrize("fn", [
        lambda x: x.tanh(), lambda x: x.sigmoid(), lambda x: x.exp(),
        lambda x: x.log(), lambda x: x.abs(), lambda x: x ** 3,
        lambda x: x.relu(), lambda x: x.leaky_relu(0.2), lambda x: x.sqrt(),
    ])
    def test_unary_op_gradcheck(self, fn, rng):
        x = Tensor(rng.uniform(0.5, 2.0, (4,)), requires_grad=True)
        check_gradients(lambda: fn(x).sum(), [x])

    def test_matmul_vec_gradcheck(self, rng):
        a = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        v = Tensor(rng.normal(size=3), requires_grad=True)
        check_gradients(lambda: (a @ v).sum(), [a, v])

    def test_matmul_3d_by_vec_gradcheck(self, rng):
        a = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        v = Tensor(rng.normal(size=4), requires_grad=True)
        check_gradients(lambda: (a @ v).sum(), [a, v])

    def test_matmul_3d_by_matrix_gradcheck(self, rng):
        a = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        w = Tensor(rng.normal(size=(4, 2)), requires_grad=True)
        check_gradients(lambda: (a @ w).sum(), [a, w])

    def test_vec_by_matrix_gradcheck(self, rng):
        v = Tensor(rng.normal(size=3), requires_grad=True)
        w = Tensor(rng.normal(size=(3, 2)), requires_grad=True)
        check_gradients(lambda: (v @ w).sum(), [v, w])

    def test_sum_keepdims_gradcheck(self, rng):
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        check_gradients(lambda: (x.sum(axis=1, keepdims=True) * x).sum(), [x])

    def test_max_axis_gradcheck(self, rng):
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        check_gradients(lambda: x.max(axis=1).sum(), [x])

    def test_mean_axis_tuple(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        check_gradients(lambda: x.mean(axis=(0, 2)).sum(), [x])

    def test_getitem_gradcheck(self, rng):
        x = Tensor(rng.normal(size=(5, 3)), requires_grad=True)
        idx = np.array([0, 2, 2, 4])
        check_gradients(lambda: (x[idx] ** 2).sum(), [x])

    def test_transpose_gradcheck(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        check_gradients(lambda: (x.transpose(2, 0, 1) ** 2).sum(), [x])

    def test_reshape_gradcheck(self, rng):
        x = Tensor(rng.normal(size=(2, 6)), requires_grad=True)
        check_gradients(lambda: (x.reshape(3, 4) ** 2).sum(), [x])

    def test_diamond_graph(self):
        x = t([1.0])
        a = x * 2
        b = x * 3
        y = a * b  # y = 6 x^2, dy/dx = 12 x
        y.backward()
        assert np.allclose(x.grad, [12.0])


class TestNoGrad:
    def test_no_grad_disables_tape(self):
        x = t([1.0])
        with no_grad():
            y = x * 2
        assert not y.requires_grad

    def test_no_grad_nests_and_restores(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_detach(self):
        x = t([1.0, 2.0])
        d = x.detach()
        assert not d.requires_grad
        assert np.shares_memory(d.data, x.data)


class TestHypothesisProperties:
    @given(st.lists(st.floats(-100, 100), min_size=1, max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_sum_matches_numpy(self, values):
        assert np.isclose(Tensor(values).sum().item(), np.sum(values))

    @given(st.lists(st.floats(-50, 50), min_size=1, max_size=16))
    @settings(max_examples=30, deadline=None)
    def test_add_sub_roundtrip(self, values):
        x = Tensor(values)
        y = Tensor(np.ones(len(values)))
        assert np.allclose((x + y - y).data, x.data)

    @given(st.integers(1, 6), st.integers(1, 6))
    @settings(max_examples=20, deadline=None)
    def test_matmul_shapes(self, n, m):
        a = Tensor(np.ones((n, m)))
        b = Tensor(np.ones((m, n)))
        assert (a @ b).shape == (n, n)
