"""Load harness: open-loop scheduler, scenarios, SLO logic, accounting.

Covers the properties that make ``repro.load`` trustworthy as a proof
of the resilience layer:

* the driver is genuinely **open-loop** — arrival times never stretch
  when the service slows down, and the hidden queue shows up as
  climbing latencies (no coordinated omission);
* the virtual-clock fast path is deterministic at a fixed seed, so
  scenario outcomes (breaker opens, degraded responses) are assertable;
* the SLO verdict implements its bounds exactly;
* :class:`~repro.deploy.ResilientRTPService` counts every shed /
  deadline-expired / errored request exactly once, including under
  concurrent load (the ``rtp_degraded_responses_total`` ==
  per-reason-sum invariant);
* (``--runslow``) a 60-second wall-clock soak through the fused
  kernels serves with zero errors and bitwise-matches the reference
  backend.
"""

import dataclasses
import json
import os
import threading
from types import SimpleNamespace

import numpy as np
import pytest

from repro import kernels
from repro.core import FallbackPredictor
from repro.deploy import (FaultPlan, ResilienceConfig, ResilientRTPService,
                          TransientServiceError)
from repro.load import (SCENARIOS, LoadPhase, LoadRunConfig, OpenLoopDriver,
                        PhaseResult, RequestStream, SLOPolicy, VirtualClock,
                        build_instance_pool, courier_churn_mutator,
                        gps_noise_mutator, run_scenario, small_model)
from repro.obs import MetricsRegistry
from repro.service import RTPRequest, RTPService


# ----------------------------------------------------------------------
# Virtual clock
# ----------------------------------------------------------------------
class TestVirtualClock:
    def test_advances_and_records_sleeps(self):
        clock = VirtualClock()
        assert clock() == 0.0
        clock.sleep(0.25)
        clock.advance(0.5)
        assert clock.now() == pytest.approx(0.75)
        assert clock.sleeps == [0.25]

    def test_negative_sleep_is_noop(self):
        clock = VirtualClock(start=3.0)
        clock.sleep(-1.0)
        assert clock() == 3.0
        assert clock.sleeps == [-1.0]  # recorded, not applied

    def test_cannot_rewind(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-0.1)


# ----------------------------------------------------------------------
# Open-loop scheduler
# ----------------------------------------------------------------------
def _dummy_request(n=3):
    return SimpleNamespace(num_locations=n)


def _dummy_response(n=3, degraded=False, reason=None):
    return SimpleNamespace(route=list(range(n)), eta_minutes=[1.0] * n,
                           degraded=degraded, degraded_reason=reason)


class TestOpenLoopScheduler:
    def test_fast_service_keeps_schedule(self):
        """With instant service the driver sleeps out exactly the
        inter-arrival gaps and measures zero queueing latency."""
        clock = VirtualClock()
        driver = OpenLoopDriver(lambda request: _dummy_response(),
                                clock=clock, sleeper=clock.sleep)
        phase = LoadPhase("steady", duration_s=1.0, rate=100.0)
        result = driver.run_phase(phase, _dummy_request)
        assert result.requests == 100
        # First arrival is due immediately; the other 99 each wait one
        # 10 ms interval.
        assert len(clock.sleeps) == 99
        assert all(s == pytest.approx(0.01) for s in clock.sleeps)
        assert result.latencies_ms == pytest.approx([0.0] * 100, abs=1e-9)
        assert result.max_backlog == 0

    def test_slow_service_never_stretches_arrivals(self):
        """Open-loop property: a service slower than the arrival
        interval makes latency *climb* (the backlog is charged to each
        request), instead of silently slowing the request stream."""
        clock = VirtualClock()
        cost_s = 0.05   # 50 ms service vs 10 ms arrival interval

        def slow_handler(request):
            clock.advance(cost_s)
            return _dummy_response()

        driver = OpenLoopDriver(slow_handler, clock=clock,
                                sleeper=clock.sleep)
        phase = LoadPhase("overload", duration_s=0.2, rate=100.0)
        result = driver.run_phase(phase, _dummy_request)
        assert result.requests == 20
        # The driver never sleeps after falling behind: every arrival
        # past the first is already due when its turn comes.
        assert len(clock.sleeps) == 0
        # Latency from *intended arrival* climbs by (cost - interval)
        # per request; the final request has queued behind all others.
        deltas = np.diff(result.latencies_ms)
        assert np.all(deltas > 0)
        expected_last = (19 * (cost_s - 0.01) + cost_s) * 1000.0
        assert result.latencies_ms[-1] == pytest.approx(expected_last)
        # Service time itself stays flat — the climb is pure queueing.
        assert result.service_ms == pytest.approx([50.0] * 20)
        assert result.max_backlog > 0

    def test_backlog_probe_tracks_lag(self):
        clock = VirtualClock()

        def slow_handler(request):
            clock.advance(0.1)   # 100 ms service, 10 ms interval
            return _dummy_response()

        driver = OpenLoopDriver(slow_handler, clock=clock,
                                sleeper=clock.sleep)
        seen = []
        original = driver.handler

        def spying_handler(request):
            seen.append(driver.probe.pending)
            return original(request)

        driver.handler = spying_handler
        driver.run_phase(LoadPhase("x", duration_s=0.1, rate=100.0),
                         _dummy_request)
        # Lag accumulates ~90 ms (= 9 arrivals) per request served.
        assert seen[0] == 0
        assert seen[-1] == 81
        assert seen == sorted(seen)
        assert driver.backlog == 0   # reset after the phase

    def test_phase_validation(self):
        with pytest.raises(ValueError):
            LoadPhase("bad", duration_s=0.0, rate=10.0)
        with pytest.raises(ValueError):
            LoadPhase("bad", duration_s=1.0, rate=-1.0)
        assert LoadPhase("tiny", duration_s=0.001, rate=1.0).num_requests == 1


# ----------------------------------------------------------------------
# Request stream & mutators
# ----------------------------------------------------------------------
class TestStreamAndMutators:
    @pytest.fixture(scope="class")
    def pool(self, world):
        return build_instance_pool(world, num_instances=6, seed=5)

    def test_round_robin_replay_is_timing_free(self, pool):
        def key(request):
            return request.locations[0].location_id

        stream = RequestStream(pool, seed=1)
        first = [key(stream.next()) for _ in range(len(pool))]
        second = [key(stream.next()) for _ in range(len(pool))]
        assert first == second
        stream.reset()
        assert [key(stream.next()) for _ in range(len(pool))] == first

    def test_gps_mutator_perturbs_copy_not_pool(self, pool):
        stream = RequestStream(pool, seed=2)
        mutator = gps_noise_mutator(dropout_rate=1.0)
        pristine = [loc.coord for loc in pool[0].locations]
        request = stream.next(mutator)
        assert any(loc.coord != orig for loc, orig
                   in zip(request.locations, pristine))
        assert request.courier_position != pool[0].courier_position
        # The shared pool must stay untouched across phases and runs.
        assert [loc.coord for loc in pool[0].locations] == pristine

    def test_churn_mutator_issues_fresh_couriers(self, pool):
        stream = RequestStream(pool, seed=3)
        mutator = courier_churn_mutator()
        ids = {stream.next(mutator).courier.courier_id for _ in range(10)}
        assert len(ids) == 10
        assert all(courier_id >= 100_000 for courier_id in ids)
        assert pool[0].courier.courier_id < 100_000


# ----------------------------------------------------------------------
# SLO verdict
# ----------------------------------------------------------------------
def _phase(name, latencies, degraded=0, slo=True, invalid=0):
    result = PhaseResult(name=name, rate=10.0, duration_s=1.0, slo=slo)
    result.requests = len(latencies)
    result.latencies_ms = list(latencies)
    result.service_ms = list(latencies)
    if degraded:
        result.degraded_by_reason = {"shed": degraded}
    result.invalid_responses = invalid
    result.valid_responses = result.requests - invalid
    return result


class TestSLOPolicy:
    def test_pass(self):
        verdict = SLOPolicy(p99_ms=100.0).evaluate(
            [_phase("a", [10.0] * 50)])
        assert verdict["passed"] and verdict["violations"] == []

    def test_p99_violation(self):
        verdict = SLOPolicy(p99_ms=100.0).evaluate(
            [_phase("a", [200.0] * 50)])
        assert not verdict["passed"]
        assert any("p99" in v for v in verdict["violations"])

    def test_degraded_violation(self):
        verdict = SLOPolicy(max_degraded_fraction=0.1).evaluate(
            [_phase("a", [1.0] * 50, degraded=20)])
        assert any("degraded" in v for v in verdict["violations"])

    def test_invalid_violation(self):
        verdict = SLOPolicy().evaluate(
            [_phase("a", [1.0] * 50, invalid=1)])
        assert any("invalid" in v for v in verdict["violations"])

    def test_non_slo_phases_excluded(self):
        verdict = SLOPolicy(p99_ms=100.0).evaluate([
            _phase("calm", [10.0] * 50),
            _phase("overload", [5000.0] * 50, degraded=50, slo=False),
        ])
        assert verdict["passed"]
        assert verdict["phases_evaluated"] == ["calm"]

    def test_no_slo_phases_is_a_violation(self):
        verdict = SLOPolicy().evaluate([_phase("x", [1.0], slo=False)])
        assert not verdict["passed"]

    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            SLOPolicy(p99_ms=0.0)
        with pytest.raises(ValueError):
            SLOPolicy(max_degraded_fraction=1.5)


# ----------------------------------------------------------------------
# Scenario composition & deterministic outcomes
# ----------------------------------------------------------------------
FAST = LoadRunConfig(phase_duration_s=1.0)


class TestScenarios:
    def test_library_is_complete(self):
        assert set(SCENARIOS) == {
            "steady", "surge", "courier_churn", "gps_dropout",
            "fault_storm", "checkpoint_corruption", "canary_surge",
            "quality_drift", "shard_soak", "shard_kill",
            "weather_slowdown", "continual_drift", "regime_cycle"}

    def test_surge_profile_composition(self):
        phases = SCENARIOS["surge"].build_phases(FAST)
        assert [p.name for p in phases] == ["baseline", "surge", "recovery"]
        assert phases[1].rate == pytest.approx(FAST.rate * FAST.surge_factor)
        assert not phases[1].slo and phases[0].slo and phases[2].slo

    def test_mutator_phases_carry_mutators(self):
        churn = SCENARIOS["courier_churn"].build_phases(FAST)
        assert churn[1].mutator is not None
        storm = SCENARIOS["fault_storm"].build_phases(FAST)
        assert isinstance(storm[1].fault_plan, FaultPlan)

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            run_scenario("rush_hour_on_mars", FAST)

    def test_fixed_seed_is_bit_reproducible(self):
        first = run_scenario("surge", FAST).artifact
        second = run_scenario("surge", FAST).artifact
        assert (json.dumps(first, sort_keys=True)
                == json.dumps(second, sort_keys=True))

    def test_surge_sheds_and_recovers(self):
        result = run_scenario("surge", FAST)
        by_name = {p.name: p for p in result.phases}
        assert by_name["surge"].degraded_by_reason.get("shed", 0) > 0
        assert by_name["surge"].max_backlog > 0
        assert by_name["baseline"].degraded == 0
        assert by_name["recovery"].degraded == 0
        assert result.passed   # overload phase is excluded from the SLO

    def test_fault_storm_opens_breaker_and_degrades(self):
        """Injected faults must surface as breaker trips + degraded
        (never failed) responses — deterministically at this seed."""
        result = run_scenario("fault_storm", FAST)
        by_name = {p.name: p for p in result.phases}
        storm = by_name["storm"]
        assert storm.breaker_opens > 0
        assert storm.degraded_by_reason.get("error", 0) > 0
        assert storm.degraded_by_reason.get("breaker_open", 0) > 0
        assert storm.degraded > 0
        # Degradation is graceful: every response is still a valid
        # route + ETA (the fallback predictor answered).
        assert sum(p.invalid_responses for p in result.phases) == 0
        assert by_name["calm"].degraded == 0

    def test_checkpoint_corruption_is_refused(self):
        result = run_scenario("checkpoint_corruption", FAST)
        events = {e["event"] for e in result.artifact["events"]}
        assert "checkpoint_corruption_rejected" in events
        assert result.artifact["totals"]["degraded"] == 0

    def test_canary_surge_rolls_back(self):
        result = run_scenario("canary_surge", FAST)
        actions = [d["action"] for d in result.artifact["decisions"]]
        assert "rollback" in actions


# ----------------------------------------------------------------------
# Exactly-once degraded accounting (ResilientRTPService)
# ----------------------------------------------------------------------
class _FlakyService:
    """Inner service that fails in bursts (so retry-once cannot always
    rescue), with a thread-safe call counter and structurally valid
    canned responses."""

    def __init__(self, template, period=5, burst=2):
        self._template = template
        self._period = period
        self._burst = burst
        self._lock = threading.Lock()
        self._calls = 0

    def handle(self, request):
        with self._lock:
            self._calls += 1
            calls = self._calls
        if calls % self._period < self._burst:
            raise TransientServiceError(f"injected failure #{calls}")
        return dataclasses.replace(self._template)


class TestDegradedAccounting:
    @pytest.fixture()
    def request_and_template(self, world):
        instance = build_instance_pool(world, 1, seed=9)[0]
        request = RTPRequest.from_instance(instance)
        template = RTPService(small_model(0, 16)).handle(request)
        return request, template

    def test_exactly_once_under_concurrency(self, request_and_template):
        """Every request lands in exactly one bucket, and the registry
        total equals the per-reason sum, even with racing callers."""
        request, template = request_and_template
        registry = MetricsRegistry()
        service = ResilientRTPService(
            _FlakyService(template),
            fallback=FallbackPredictor(),
            config=ResilienceConfig(breaker_failure_threshold=3,
                                    breaker_recovery_seconds=0.001),
            registry=registry, version="vtest")
        threads = 8
        per_thread = 50

        def worker():
            for _ in range(per_thread):
                response = service.handle(request)
                # Degraded or not, the request is always answered.
                assert len(response.route) == request.num_locations

        pool = [threading.Thread(target=worker) for _ in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()

        counts = service.snapshot()
        total = threads * per_thread
        assert counts["requests"] == total
        # Partition: each request is either a model answer or degraded.
        assert counts["model"] + counts["degraded"] == total
        # Each degraded response has exactly one reason.
        reasons = ("breaker_open", "deadline", "shed", "error")
        assert counts["degraded"] == sum(counts[r] for r in reasons)
        assert counts["degraded"] > 0   # the flake rate guarantees some
        # Registry reconciliation: the exactly-once total equals the
        # per-reason counters and the local tally.
        responses_total = registry.get(
            "rtp_degraded_responses_total").labels(version="vtest").value
        per_reason_total = sum(
            registry.get("rtp_degraded_total")
            .labels(version="vtest", reason=reason).value
            for reason in reasons)
        assert responses_total == per_reason_total == counts["degraded"]
        assert (registry.get("rtp_model_requests_total")
                .labels(version="vtest").value == total)

    def test_shed_and_deadline_counted_once(self, request_and_template):
        """Admission-shed requests never double-count as errors."""
        request, template = request_and_template
        registry = MetricsRegistry()
        service = ResilientRTPService(
            _FlakyService(template, period=10 ** 9, burst=0),
            config=ResilienceConfig(max_queue_depth=1),
            batcher=SimpleNamespace(pending=99),   # permanently saturated
            registry=registry, version="vshed")
        for _ in range(20):
            assert service.handle(request).degraded_reason == "shed"
        counts = service.snapshot()
        assert counts["shed"] == counts["degraded"] == 20
        assert counts["error"] == counts["errors"] == 0
        assert (registry.get("rtp_degraded_responses_total")
                .labels(version="vshed").value == 20)


# ----------------------------------------------------------------------
# Soak (satellite: --runslow)
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestSoak:
    def test_steady_soak_fused_matches_reference(self):
        """A sustained wall-clock steady run through the fused kernels:
        zero hard errors, all answers valid, and sampled predictions
        bitwise-identical to the reference backend."""
        soak_s = float(os.environ.get("REPRO_SOAK_SECONDS", "60"))
        model = small_model(seed=17, hidden_dim=16)
        config = LoadRunConfig(rate=20.0, phase_duration_s=soak_s * 0.8,
                               virtual=False, seed=17)
        with kernels.backend_scope("fused"):
            result = run_scenario("steady", config, model=model)
        for phase in result.phases:
            assert phase.degraded_by_reason.get("error", 0) == 0, (
                f"{phase.name}: hard errors during the soak")
            assert phase.invalid_responses == 0
        steady = next(p for p in result.phases if p.name == "steady")
        assert steady.requests >= int(0.8 * soak_s * config.rate)

        # Bitwise conformance on sampled requests: fused and reference
        # backends must produce identical routes and ETAs.
        pool = result.context.stream.instances
        sample = pool[:: max(1, len(pool) // 8)]
        for instance in sample:
            request = RTPRequest.from_instance(instance)
            with kernels.backend_scope("fused"):
                fused = RTPService(model).handle(request)
            with kernels.backend_scope("reference"):
                reference = RTPService(model).handle(request)
            assert list(fused.route) == list(reference.route)
            assert np.array_equal(np.asarray(fused.eta_minutes),
                                  np.asarray(reference.eta_minutes))
