"""Shared fixtures: a small synthetic world and dataset reused across tests.

Also wires the ``slow`` marker: tests marked ``@pytest.mark.slow``
(extended fuzz sweeps, large parity sweeps) are skipped unless pytest
runs with ``--runslow``.
"""

import numpy as np
import pytest

from repro.data import GeneratorConfig, RTPDataset, SyntheticWorld
from repro.graphs import GraphBuilder


def pytest_addoption(parser):
    parser.addoption(
        "--runslow", action="store_true", default=False,
        help="also run tests marked slow (extended sweeps)")


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: long-running test, needs --runslow to execute")


def pytest_collection_modifyitems(config, items):
    if config.getoption("--runslow"):
        return
    skip_slow = pytest.mark.skip(reason="needs --runslow option to run")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)


@pytest.fixture(scope="session")
def world():
    config = GeneratorConfig(
        num_aois=40, num_couriers=4, num_days=6,
        instances_per_courier_day=2, seed=123)
    return SyntheticWorld(config)


@pytest.fixture(scope="session")
def dataset(world):
    return RTPDataset(world.generate())


@pytest.fixture(scope="session")
def splits(dataset):
    return dataset.split_by_day()


@pytest.fixture(scope="session")
def builder():
    return GraphBuilder(k_neighbors=3)


@pytest.fixture(scope="session")
def instance(dataset):
    # A multi-AOI instance with a handful of locations.
    for candidate in dataset:
        if candidate.num_aois >= 2 and candidate.num_locations >= 5:
            return candidate
    return dataset[0]


@pytest.fixture(scope="session")
def graph(builder, instance):
    return builder.build(instance)


@pytest.fixture
def rng():
    return np.random.default_rng(0)
