"""Tests for beam-search route decoding."""

import numpy as np
import pytest

from repro.autodiff import Tensor, no_grad
from repro.core import (
    M2G4RTP,
    M2G4RTPConfig,
    RouteDecoder,
    beam_search_predict,
    beam_search_route,
)


@pytest.fixture
def decoder(rng):
    return RouteDecoder(node_dim=6, state_dim=8, courier_dim=3, rng=rng,
                        restrict_to_neighbors=False)


class TestBeamSearchRoute:
    def test_returns_permutation(self, decoder, rng):
        nodes = Tensor(rng.normal(size=(6, 6)))
        route, log_prob = beam_search_route(decoder, nodes, Tensor(np.zeros(3)),
                                            width=3)
        assert sorted(route.tolist()) == list(range(6))
        assert np.isfinite(log_prob)

    def test_width_one_matches_greedy(self, decoder, rng):
        nodes = Tensor(rng.normal(size=(7, 6)))
        courier = Tensor(np.zeros(3))
        with no_grad():
            greedy = decoder(nodes, courier).route
        beam, _ = beam_search_route(decoder, nodes, courier, width=1)
        assert np.array_equal(beam, greedy)

    def test_wider_beam_never_lower_log_prob(self, decoder, rng):
        nodes = Tensor(rng.normal(size=(7, 6)))
        courier = Tensor(np.zeros(3))
        _, narrow = beam_search_route(decoder, nodes, courier, width=1)
        _, wide = beam_search_route(decoder, nodes, courier, width=5)
        assert wide >= narrow - 1e-9

    def test_invalid_width(self, decoder, rng):
        nodes = Tensor(rng.normal(size=(3, 6)))
        with pytest.raises(ValueError):
            beam_search_route(decoder, nodes, Tensor(np.zeros(3)), width=0)

    def test_single_node(self, decoder, rng):
        nodes = Tensor(rng.normal(size=(1, 6)))
        route, _ = beam_search_route(decoder, nodes, Tensor(np.zeros(3)),
                                     width=4)
        assert route.tolist() == [0]

    def test_respects_adjacency_restriction(self, rng):
        decoder = RouteDecoder(node_dim=6, state_dim=8, courier_dim=3,
                               rng=rng, restrict_to_neighbors=True)
        nodes = Tensor(rng.normal(size=(5, 6)))
        adjacency = np.eye(5, dtype=bool)  # fallback path must engage
        route, _ = beam_search_route(decoder, nodes, Tensor(np.zeros(3)),
                                     adjacency=adjacency, width=3)
        assert sorted(route.tolist()) == list(range(5))


class TestBeamSearchPredict:
    @pytest.fixture(scope="class")
    def model(self):
        return M2G4RTP(M2G4RTPConfig(hidden_dim=16, num_heads=2,
                                     num_encoder_layers=1))

    def test_full_model_beam_inference(self, model, graph, instance):
        output = beam_search_predict(model, graph, width=3)
        assert sorted(output.route.tolist()) == list(range(instance.num_locations))
        assert output.arrival_times.shape == (instance.num_locations,)
        assert sorted(output.aoi_route.tolist()) == list(range(instance.num_aois))

    def test_width_one_matches_greedy_predict(self, model, graph):
        greedy = model.predict(graph)
        beam = beam_search_predict(model, graph, width=1)
        assert np.array_equal(beam.route, greedy.route)
        assert np.allclose(beam.arrival_times, greedy.arrival_times)

    def test_wo_aoi_variant_supported(self, graph, instance):
        from repro.core import make_variant
        model = M2G4RTP(make_variant("w/o aoi", M2G4RTPConfig(
            hidden_dim=16, num_heads=2, num_encoder_layers=1)))
        output = beam_search_predict(model, graph, width=2)
        assert output.aoi_route is None
        assert sorted(output.route.tolist()) == list(range(instance.num_locations))

    def test_restores_training_mode(self, model, graph):
        model.train()
        beam_search_predict(model, graph, width=2)
        assert model.training
        model.eval()
