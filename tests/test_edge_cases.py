"""Edge-case and failure-injection tests across the pipeline."""

import dataclasses

import numpy as np
import pytest

from repro.core import M2G4RTP, M2G4RTPConfig, RTPTargets
from repro.data import AOI, Courier, Location, RTPInstance
from repro.graphs import GraphBuilder
from repro.service import RTPRequest, RTPService


def tiny_instance(n_locations=1, n_aois=1):
    """A minimal but valid instance (single AOI / single location)."""
    courier = Courier(courier_id=0, speed=200.0, working_hours=8.0,
                      attendance_rate=0.9, service_time_mean=3.0,
                      aoi_type_preference=(0, 1, 2, 3, 4, 5))
    aois = [AOI(aoi_id=i, aoi_type=i % 6,
                center=(120.1 + 0.01 * i, 30.2)) for i in range(n_aois)]
    locations = []
    for i in range(n_locations):
        aoi = aois[i % n_aois]
        locations.append(Location(
            location_id=i, coord=(aoi.center[0] + 1e-4 * i, aoi.center[1]),
            aoi_id=aoi.aoi_id, accept_time=400.0, deadline=550.0))
    order = np.arange(n_locations)
    arrival = np.linspace(4.0, 4.0 + 5 * n_locations, n_locations)
    aoi_seen, aoi_arrival = [], []
    for i in order:
        a = locations[i].aoi_id
        if a not in aoi_seen:
            aoi_seen.append(a)
            aoi_arrival.append(arrival[i])
    aoi_route = np.array([aoi_seen.index(a.aoi_id) for a in aois
                          if a.aoi_id in aoi_seen])
    # Build aoi_route as permutation of all aois in visit order.
    aoi_route = np.argsort([aoi_seen.index(a.aoi_id) for a in aois])
    return RTPInstance(
        courier=courier, request_time=480.0,
        courier_position=(120.1, 30.2),
        locations=locations, aois=aois,
        route=order, arrival_times=arrival,
        aoi_route=aoi_route,
        aoi_arrival_times=np.array([
            min(arrival[i] for i in range(n_locations)
                if locations[i].aoi_id == aoi.aoi_id)
            for aoi in aois
        ]),
    )


@pytest.fixture(scope="module")
def tiny_model():
    return M2G4RTP(M2G4RTPConfig(hidden_dim=16, num_heads=2,
                                 num_encoder_layers=1))


class TestSingleLocation:
    def test_graph_builder_handles_n1(self):
        instance = tiny_instance(1, 1)
        graph = GraphBuilder().build(instance)
        assert graph.num_locations == 1
        assert graph.location.adjacency[0, 0]

    def test_model_predicts_n1(self, tiny_model):
        instance = tiny_instance(1, 1)
        graph = GraphBuilder().build(instance)
        output = tiny_model.predict(graph)
        assert output.route.tolist() == [0]
        assert output.aoi_route.tolist() == [0]

    def test_model_trains_on_n1(self, tiny_model):
        instance = tiny_instance(1, 1)
        graph = GraphBuilder().build(instance)
        output = tiny_model(graph, RTPTargets.from_instance(instance))
        assert np.isfinite(float(output.total_loss.data))
        output.total_loss.backward()

    def test_service_handles_n1(self, tiny_model):
        service = RTPService(tiny_model)
        response = service.handle(RTPRequest.from_instance(tiny_instance(1, 1)))
        assert response.route.tolist() == [0]


class TestManyAOIs:
    def test_every_location_its_own_aoi(self, tiny_model):
        instance = tiny_instance(4, 4)
        graph = GraphBuilder().build(instance)
        assert graph.num_aois == 4
        output = tiny_model.predict(graph)
        assert sorted(output.aoi_route.tolist()) == [0, 1, 2, 3]

    def test_all_locations_one_aoi(self, tiny_model):
        instance = tiny_instance(5, 1)
        graph = GraphBuilder().build(instance)
        assert graph.num_aois == 1
        output = tiny_model.predict(graph)
        assert sorted(output.route.tolist()) == list(range(5))


class TestDegenerateGeometry:
    def test_identical_coordinates(self, tiny_model):
        """All locations at exactly the same point must not crash
        (zero distances everywhere)."""
        instance = tiny_instance(4, 1)
        same = [dataclasses.replace(loc, coord=(120.1, 30.2))
                for loc in instance.locations]
        instance = dataclasses.replace(instance, locations=same)
        graph = GraphBuilder().build(instance)
        assert np.all(np.isfinite(graph.location.edge_features))
        output = tiny_model.predict(graph)
        assert sorted(output.route.tolist()) == list(range(4))

    def test_identical_deadlines(self, tiny_model):
        instance = tiny_instance(4, 2)
        graph = GraphBuilder().build(instance)
        # deadline gaps are all zero -> temporal knn must still work.
        assert np.all(np.isfinite(graph.location.edge_features[..., 1]))
        tiny_model.predict(graph)

    def test_courier_far_away(self, tiny_model):
        instance = tiny_instance(3, 1)
        instance = dataclasses.replace(instance,
                                       courier_position=(121.5, 31.5))
        graph = GraphBuilder().build(instance)
        output = tiny_model.predict(graph)
        assert np.all(np.isfinite(output.arrival_times))


class TestLargeIdsAndVocabularies:
    def test_aoi_id_hashing(self, tiny_model):
        """AOI ids beyond the embedding vocabulary hash by modulo."""
        instance = tiny_instance(3, 2)
        big_aois = [dataclasses.replace(a, aoi_id=a.aoi_id + 10_000_000)
                    for a in instance.aois]
        big_locations = [dataclasses.replace(l, aoi_id=l.aoi_id + 10_000_000)
                         for l in instance.locations]
        instance = dataclasses.replace(instance, aois=big_aois,
                                       locations=big_locations)
        graph = GraphBuilder(num_aoi_ids=256).build(instance)
        assert np.all(graph.location.discrete[:, 0] < 256)
        tiny_model.predict(graph)

    def test_courier_id_hashing(self, tiny_model):
        instance = tiny_instance(3, 1)
        big_courier = dataclasses.replace(instance.courier,
                                          courier_id=987654321)
        instance = dataclasses.replace(instance, courier=big_courier)
        graph = GraphBuilder().build(instance)
        tiny_model.predict(graph)


class TestWeatherCodes:
    def test_all_weather_codes_accepted(self, tiny_model):
        for weather in range(4):
            instance = dataclasses.replace(tiny_instance(3, 1),
                                           weather=weather)
            graph = GraphBuilder().build(instance)
            tiny_model.predict(graph)
