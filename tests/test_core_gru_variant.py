"""Tests for the GRU decoder-cell option of M2G4RTP."""

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.core import (
    M2G4RTP,
    M2G4RTPConfig,
    RouteDecoder,
    RTPTargets,
    SortLSTM,
    beam_search_predict,
)
from repro.core.decoder import RecurrentCell
from repro.training import Trainer, TrainerConfig


class TestRecurrentCell:
    def test_lstm_state_is_tuple(self, rng):
        cell = RecurrentCell(4, 6, rng, "lstm")
        h, state = cell.step(Tensor(np.zeros(4)), None)
        assert isinstance(state, tuple) and len(state) == 2
        assert h.shape == (6,)

    def test_gru_state_is_hidden(self, rng):
        cell = RecurrentCell(4, 6, rng, "gru")
        h, state = cell.step(Tensor(np.zeros(4)), None)
        assert state is h

    def test_unknown_cell_type(self, rng):
        with pytest.raises(ValueError):
            RecurrentCell(4, 6, rng, "rnn")


class TestGRUDecoders:
    def test_route_decoder_gru(self, rng):
        decoder = RouteDecoder(6, 8, 3, rng, restrict_to_neighbors=False,
                               cell_type="gru")
        output = decoder(Tensor(rng.normal(size=(5, 6))), Tensor(np.zeros(3)))
        assert sorted(output.route.tolist()) == list(range(5))

    def test_sortlstm_gru(self, rng):
        sorter = SortLSTM(6, 8, position_dim=4, rng=rng, cell_type="gru")
        times = sorter(Tensor(rng.normal(size=(4, 6))), np.arange(4))
        assert times.shape == (4,)


class TestGRUModel:
    @pytest.fixture(scope="class")
    def gru_model(self):
        return M2G4RTP(M2G4RTPConfig(hidden_dim=16, num_heads=2,
                                     num_encoder_layers=1, cell_type="gru"))

    def test_forward_and_losses(self, gru_model, graph, instance):
        output = gru_model(graph, RTPTargets.from_instance(instance))
        assert np.isfinite(float(output.total_loss.data))
        output.total_loss.backward()

    def test_predict(self, gru_model, graph, instance):
        output = gru_model.predict(graph)
        assert sorted(output.route.tolist()) == list(
            range(instance.num_locations))

    def test_beam_search(self, gru_model, graph, instance):
        output = beam_search_predict(gru_model, graph, width=3)
        assert sorted(output.route.tolist()) == list(
            range(instance.num_locations))

    def test_fewer_parameters_than_lstm(self, gru_model):
        lstm_model = M2G4RTP(M2G4RTPConfig(hidden_dim=16, num_heads=2,
                                           num_encoder_layers=1,
                                           cell_type="lstm"))
        assert gru_model.num_parameters() < lstm_model.num_parameters()

    def test_trains(self, gru_model, splits):
        train, _, _ = splits
        history = Trainer(gru_model, TrainerConfig(epochs=2)).fit(train[:6])
        assert history.train_loss[-1] < history.train_loss[0] * 1.5
