"""The benchmark regression gate: exact-count diffs, p99 tolerance
bands, drift-alarm pinning and the --update bless flow."""

import copy
import importlib.util
import json
import pathlib

import pytest

_GATE_PATH = (pathlib.Path(__file__).resolve().parent.parent
              / "benchmarks" / "check_regression.py")
_spec = importlib.util.spec_from_file_location("check_regression",
                                               _GATE_PATH)
gate = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(gate)


def artifact(p99=20.0, requests=80, degraded=0, passed=True,
             decisions=(), quality=None):
    result = {
        "scenario": "steady",
        "totals": {"requests": requests, "degraded": degraded,
                   "shed": 0, "breaker_opens": 0, "errors": 0,
                   "invalid_responses": 0},
        "slo": {"passed": passed, "p99_ms": p99},
        "decisions": [dict(d) for d in decisions],
    }
    if quality is not None:
        result["quality"] = copy.deepcopy(quality)
    return result


def compare(current, baseline):
    errors, warnings = [], []
    gate.compare_artifact("steady", current, baseline, errors, warnings)
    return errors, warnings


class TestCompare:
    def test_identical_artifacts_pass(self):
        errors, warnings = compare(artifact(), artifact())
        assert errors == [] and warnings == []

    def test_count_change_is_exact_failure(self):
        errors, _ = compare(artifact(requests=81), artifact(requests=80))
        assert any("totals.requests" in e for e in errors)

    def test_p99_within_band_passes(self):
        errors, _ = compare(artifact(p99=23.0), artifact(p99=20.0))
        assert errors == []

    def test_p99_outside_band_fails(self):
        errors, _ = compare(artifact(p99=40.0), artifact(p99=20.0))
        assert any("p99" in e for e in errors)

    def test_p99_near_band_edge_warns(self):
        # Band is max(10%, 5ms) = 5ms for a 20ms baseline; 3.5ms over
        # is within the band but past half of it.
        errors, warnings = compare(artifact(p99=23.5), artifact(p99=20.0))
        assert errors == []
        assert any("drifting" in w for w in warnings)

    def test_verdict_flip_fails(self):
        errors, _ = compare(artifact(passed=False), artifact(passed=True))
        assert any("verdict" in e for e in errors)

    def test_decision_sequence_pinned(self):
        errors, _ = compare(
            artifact(decisions=[{"action": "rollback"}]),
            artifact(decisions=[{"action": "promote"}]))
        assert any("decisions" in e for e in errors)

    def test_drift_alarms_pinned(self):
        quality = {"verdict": "drift", "observations": 80,
                   "alarms": [{"metric": "eta_mae",
                               "detector": "page_hinkley",
                               "observations": 25}]}
        moved = copy.deepcopy(quality)
        moved["alarms"][0]["observations"] = 26
        errors, _ = compare(artifact(quality=moved),
                            artifact(quality=quality))
        assert any("drift alarms" in e for e in errors)

    def test_quality_block_vanishing_fails(self):
        quality = {"verdict": "stable", "observations": 80, "alarms": []}
        errors, _ = compare(artifact(), artifact(quality=quality))
        assert any("quality block" in e for e in errors)


class TestRunFlow:
    @pytest.fixture
    def dirs(self, tmp_path, monkeypatch):
        results = tmp_path / "results"
        baselines = tmp_path / "baselines"
        results.mkdir()
        monkeypatch.setattr(gate, "RESULTS_DIR", results)
        monkeypatch.setattr(gate, "BASELINES_DIR", baselines)
        return results, baselines

    def write(self, directory, name, data):
        (directory / name).write_text(json.dumps(data))

    def test_missing_baselines_dir_fails(self, dirs, capsys):
        results, _ = dirs
        self.write(results, "load_steady_smoke.json", artifact())
        assert gate.run() == 2
        assert "::error::" in capsys.readouterr().out

    def test_update_blesses_then_gate_passes(self, dirs, capsys):
        results, baselines = dirs
        self.write(results, "load_steady_smoke.json", artifact())
        assert gate.run(update=True) == 0
        assert (baselines / "load_steady_smoke.json").exists()
        assert gate.run() == 0
        assert "::error::" not in capsys.readouterr().out

    def test_regression_fails_with_annotation(self, dirs, capsys):
        results, baselines = dirs
        self.write(results, "load_steady_smoke.json", artifact())
        assert gate.run(update=True) == 0
        self.write(results, "load_steady_smoke.json",
                   artifact(p99=200.0, degraded=12))
        assert gate.run() == 1
        out = capsys.readouterr().out
        assert "::error::" in out and "totals.degraded" in out

    def test_new_scenario_without_baseline_warns_only(self, dirs, capsys):
        results, baselines = dirs
        self.write(results, "load_steady_smoke.json", artifact())
        assert gate.run(update=True) == 0
        self.write(results, "load_new_smoke.json", artifact())
        assert gate.run() == 0
        assert "::warning::" in capsys.readouterr().out

    def test_vanished_scenario_fails(self, dirs, capsys):
        results, baselines = dirs
        self.write(results, "load_steady_smoke.json", artifact())
        self.write(results, "load_surge_smoke.json", artifact())
        assert gate.run(update=True) == 0
        (results / "load_surge_smoke.json").unlink()
        assert gate.run() == 1
        assert "no artifact" in capsys.readouterr().out
