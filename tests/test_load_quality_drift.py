"""End-to-end quality_drift scenario: a silent accuracy regression
(shifted ground-truth arrivals, healthy latency) must be caught by the
quality stream alone and roll the canary back.

The scenario runs on the virtual clock with seeded RNGs, so the run —
including the alarm's firing observation and statistic — is asserted
to be bit-reproducible.  The tail-diagnostics test closes the loop the
tentpole promises: p99 latency exemplar → trace id → full request
trace in the collector → original request payload in the flight
recorder.
"""

import json

import pytest

from repro.load import LoadRunConfig, run_scenario, validate_artifact
from repro.obs import disable_tracing, enable_tracing

SMOKE = dict(phase_duration_s=1.0, virtual=True, seed=0)


@pytest.fixture(autouse=True)
def _tracing_off():
    disable_tracing()
    yield
    disable_tracing()


@pytest.fixture(scope="module")
def drift_result():
    return run_scenario("quality_drift", LoadRunConfig(**SMOKE))


class TestQualityDriftScenario:
    def test_alarm_raised_and_canary_rolled_back(self, drift_result):
        artifact = drift_result.artifact
        validate_artifact(artifact)
        quality = artifact["quality"]
        assert quality["verdict"] == "drift"
        assert quality["alarms"], "the label shift must raise an alarm"
        first = quality["alarms"][0]
        assert first["metric"] == "eta_mae"
        assert first["statistic"] > first["threshold"]

        rollbacks = [d for d in artifact["decisions"]
                     if d["action"] == "rollback"]
        assert len(rollbacks) == 1
        assert rollbacks[0]["version"] == "v002"
        assert rollbacks[0]["reason"].startswith("drift:")

        events = [e["event"] for e in drift_result.context.events]
        for expected in ("canary_started", "label_shift",
                         "drift_alarm", "drift_rollback"):
            assert expected in events
        # The rollback is causally after the shift and the alarm.
        assert events.index("label_shift") < events.index("drift_alarm") \
            < events.index("drift_rollback")

    def test_serving_metrics_stay_green(self, drift_result):
        """The whole point: latency/degraded SLOs never notice."""
        artifact = drift_result.artifact
        assert artifact["slo"]["passed"]
        assert artifact["totals"]["degraded"] == 0
        assert artifact["totals"]["errors"] == 0

    def test_quality_gauges_registered(self, drift_result):
        rendered = drift_result.context.metrics.render()
        assert "rtp_quality_eta_mae" in rendered
        assert "rtp_quality_route_krc" in rendered
        assert "rtp_quality_drift_alarms_total" in rendered
        assert 'segment="all"' in rendered
        assert 'segment="model_version"' in rendered

    def test_alarm_counter_matches_artifact(self, drift_result):
        artifact = drift_result.artifact
        counter = drift_result.context.metrics.get(
            "rtp_quality_drift_alarms_total")
        total = sum(
            counter.labels(metric=a["metric"], detector=a["detector"],
                           segment=a["segment"], key=a["key"]).value
            for a in {(a["metric"], a["detector"], a["segment"],
                       a["key"]): a
                      for a in artifact["quality"]["alarms"]}.values())
        assert total == len(artifact["quality"]["alarms"])

    def test_bit_reproducible(self, drift_result):
        repeat = run_scenario("quality_drift", LoadRunConfig(**SMOKE))
        assert json.dumps(repeat.artifact, sort_keys=True) == \
            json.dumps(drift_result.artifact, sort_keys=True)


class TestTailDiagnostics:
    def test_p99_exemplar_resolves_to_trace_and_payload(self):
        collector = enable_tracing()
        result = run_scenario("quality_drift", LoadRunConfig(**SMOKE))
        histogram = result.context.metrics.get("load_latency_ms")
        resolved = 0
        for phase in result.artifact["phases"]:
            entries = histogram.exemplars(scenario="quality_drift",
                                          phase=phase["name"])
            assert entries, f"{phase['name']}: tail exemplars expected"
            for entry in entries:
                trace_id = entry["trace_id"]
                roots = collector.trace_roots(trace_id)
                assert roots, "exemplar must resolve to a collected trace"
                assert roots[0].name == "load.request"
                payload = result.context.recorder.lookup(trace_id)
                if payload is None:
                    continue  # evicted by the bounded recorder — fine
                assert payload["request"] is not None
                assert payload["phase"] == phase["name"]
                resolved += 1
        # The recorder is bounded, not useless: recent tails resolve.
        assert resolved > 0

    def test_recorder_captures_every_traced_request(self):
        enable_tracing()
        result = run_scenario("quality_drift", LoadRunConfig(**SMOKE))
        recorder = result.context.recorder
        assert len(recorder) <= recorder.capacity
        # Under capacity nothing is evicted: one entry per request.
        assert len(recorder) == min(result.artifact["totals"]["requests"],
                                    recorder.capacity)
