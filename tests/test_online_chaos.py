"""Chaos sweep over the online loop: kill it at every event boundary.

A **durable** :class:`repro.online.OnlineLoop` persists its state
(loop record, policy damping, buffer + frozen-holdout snapshots)
*before* notifying each event, so a process death inside any event
callback finds everything the event describes already on disk.  This
suite simulates exactly that: the continual-drift arc is driven
through a feedback harness whose event callback raises at a chosen
boundary — ``drift_alarm``, ``online_retrain_started``,
``online_candidate_registered``, ``online_canary_started`` — the whole
object graph is torn down, rebuilt over the same directories, restored
from ``loop_state.json``, and driven to completion.

Invariants, per boundary:

* the restarted loop finishes the arc (retrain → register → canary →
  promote);
* the student is registered **exactly once** — the deterministic
  ``created_at`` job marker dedupes a replayed registration;
* the student is promoted **exactly once** (ACTIVE_HISTORY shows one
  activation beyond the parent's) — never double-promoted;
* the student's checkpoint is **bitwise identical** to an unkilled
  control run's: the replayed fine-tune resumes (or re-runs) the same
  job id over the same restored window, replay sample and permutation
  stream.
"""

import numpy as np
import pytest

from repro.deploy import DeploymentController, ModelRegistry, RolloutPolicy
from repro.load.scenarios import small_model
from repro.load.stream import RequestStream, build_instance_pool
from repro.data import GeneratorConfig, SyntheticWorld
from repro.obs import disable_tracing
from repro.obs.metrics import MetricsRegistry
from repro.obs.quality import (CompletedRoute, PageHinkleyDetector,
                               QualityMonitor, ReferenceWindowDetector)
from repro.online import (AntiRegressionGate, ExperienceBuffer, GateConfig,
                          OnlineLoop, OnlineLoopConfig, OnlineTrainer,
                          OnlineTrainerConfig, RetrainPolicy,
                          RetrainPolicyConfig)

KILL_BOUNDARIES = ("drift_alarm", "online_retrain_started",
                   "online_candidate_registered", "online_canary_started")


@pytest.fixture(autouse=True)
def _tracing_off():
    disable_tracing()
    yield
    disable_tracing()


@pytest.fixture(scope="module")
def pool():
    world = SyntheticWorld(GeneratorConfig(
        num_aois=40, num_couriers=6, num_days=4,
        instances_per_courier_day=2, seed=7))
    return build_instance_pool(world, 24, seed=8)


class _Kill(Exception):
    """Simulated process death inside an event callback."""


class _ChaosRig:
    """One incarnation of the serve→quality→loop object graph.

    All durable state (registry, trainer workdir) lives under
    ``root``; a new incarnation over the same root restores it.
    """

    def __init__(self, root, pool, kill_at=None):
        self.metrics = MetricsRegistry()
        self.registry = ModelRegistry(root / "reg")
        if not self.registry.versions():
            manifest = self.registry.register(
                small_model(17, 16), created_at="t0")
            self.registry.activate(manifest.version)
        self.kill_at = kill_at
        self.killed = False
        self.events = []
        active = self.registry.active()
        self.controller = DeploymentController(
            self.registry, metrics=self.metrics, initial=active, seed=5,
            policy=RolloutPolicy(canary_fraction=0.5, min_requests=10,
                                 max_quality_mae_ratio=0.95,
                                 min_quality_routes=8))
        self.monitor = QualityMonitor(
            self.metrics, window=32,
            page_hinkley=PageHinkleyDetector(delta=20.0, threshold=240.0,
                                             min_samples=8),
            reference_window=ReferenceWindowDetector(24, 12, 0.75, 3.0))
        self.loop = OnlineLoop(
            self.registry, self.controller,
            ExperienceBuffer(capacity=48, reservoir=16, max_pending=64,
                             seed=3, metrics=self.metrics),
            OnlineTrainer(self.registry, root / "jobs",
                          OnlineTrainerConfig(replay_fraction=1.0,
                                              learning_rate=0.012,
                                              epochs=10),
                          metrics=self.metrics),
            RetrainPolicy(RetrainPolicyConfig(
                min_window=24, cooldown_s=1e9, min_new_samples=8,
                post_alarm_samples=28)),
            # The flat +480 shift is feature-inseparable, so the clean
            # budget would (correctly) reject it — this sweep is about
            # durability and exactly-once, so only the drift leg gates.
            AntiRegressionGate(GateConfig(max_clean_regression_ratio=None)),
            OnlineLoopConfig(train_window=32, holdout_every=4,
                             durable=True),
            metrics=self.metrics, on_event=self._on_event)
        self.loop.attach(self.monitor)
        self.monitor.on_alarm(self._on_alarm)
        self.controller.primary.attach_feedback(self.loop)
        self.stream = RequestStream(pool, seed=9)

    def _die(self, boundary):
        self.killed = True
        raise _Kill(boundary)

    def _on_event(self, event, detail):
        self.events.append(event)
        if not self.killed and event == self.kill_at:
            self._die(event)

    def _on_alarm(self, alarm):
        self.events.append("drift_alarm")
        if not self.killed and self.kill_at == "drift_alarm":
            self._die("drift_alarm")

    def pump(self, count, shifted=False, stop_on_decision=False):
        for _ in range(count):
            request = self.stream.next()
            instance = self.stream.last_instance
            response = self.controller.handle(request)
            actual = np.asarray(instance.arrival_times, dtype=float)
            if shifted:
                actual = actual + 480.0
            self.monitor.record(CompletedRoute(
                predicted_route=response.route,
                actual_route=list(instance.route),
                predicted_eta_minutes=response.eta_minutes,
                actual_arrival_minutes=actual,
                labels={"model_version": response.model_version}))
            self.controller.primary.complete_route(
                request, response, list(instance.route), actual)
            self.loop.tick()
            if stop_on_decision and self.controller.decisions:
                return


def _student_versions(registry):
    return [v for v in registry.versions()
            if registry.manifest(v).created_at != "t0"]


def _activation_history(registry):
    path = registry.root / "ACTIVE_HISTORY"
    if not path.exists():
        return []
    return [line.split()[-1] for line in path.read_text().splitlines()
            if line.strip()]


def _drive_to_completion(rig):
    """Pump the shifted stream until the controller has ruled."""
    rig.pump(200, shifted=True, stop_on_decision=True)
    assert rig.controller.decisions, "the canary never resolved"


@pytest.fixture(scope="module")
def control(tmp_path_factory, pool):
    """The unkilled reference run every chaos run must reproduce."""
    root = tmp_path_factory.mktemp("chaos-control")
    rig = _ChaosRig(root, pool)
    rig.pump(72)
    _drive_to_completion(rig)
    students = _student_versions(rig.registry)
    assert len(students) == 1
    manifest = rig.registry.manifest(students[0])
    decisions = [d.action for d in rig.controller.decisions]
    assert decisions == ["promote"]
    return {
        "checksum": manifest.checkpoint_sha256,
        "history": _activation_history(rig.registry),
    }


class TestChaosKillAtEveryBoundary:
    @pytest.mark.parametrize("boundary", KILL_BOUNDARIES)
    def test_restart_replays_arc_exactly_once(self, boundary, tmp_path,
                                              pool, control):
        root = tmp_path
        first = _ChaosRig(root, pool, kill_at=boundary)
        with pytest.raises(_Kill):
            first.pump(72)
            first.pump(200, shifted=True, stop_on_decision=True)
        assert boundary in first.events
        # The process is gone.  A new incarnation restores from disk.
        second = _ChaosRig(root, pool)
        assert second.loop.restore() is True, (
            f"durable loop left no restorable state at {boundary!r}")
        # The restored policy still holds the armed quorum (or the
        # restored candidates record): the very next ticks finish the
        # interrupted work without waiting for fresh alarms.
        second.loop.tick()
        _drive_to_completion(second)

        # Arc completed across incarnations.
        combined = first.events + second.events
        for milestone in ("online_retrain_started",
                          "online_candidate_registered",
                          "online_canary_started"):
            assert milestone in combined, (
                f"kill at {boundary!r}: {milestone} never fired")

        # Registered exactly once — the job marker deduped the replay.
        students = _student_versions(second.registry)
        assert len(students) == 1, (
            f"kill at {boundary!r} minted duplicate students: {students}")
        # Promoted exactly once, never double-promoted.
        decisions = [d.action for d in second.controller.decisions]
        assert decisions == ["promote"]
        history = _activation_history(second.registry)
        assert history == control["history"], (
            f"kill at {boundary!r}: activation history {history} != "
            f"control {control['history']}")
        assert history.count(students[0]) == 1
        assert second.controller.active_version == students[0]

        # Bitwise-identical student: same window, same replay sample,
        # same permutation stream, same weights.  Only meaningful once
        # the training window is durable — a kill at the alarm boundary
        # loses the dead process's stream position, so the post-restart
        # window is (correctly) built from post-restart traffic.
        if boundary != "drift_alarm":
            manifest = second.registry.manifest(students[0])
            assert manifest.checkpoint_sha256 == control["checksum"], (
                f"kill at {boundary!r}: replayed fine-tune diverged "
                f"from the uninterrupted run")

    @pytest.mark.slow
    def test_double_restart_still_exactly_once(self, tmp_path, pool,
                                               control):
        """Two consecutive kills (register, then canary) on one arc."""
        root = tmp_path
        first = _ChaosRig(root, pool,
                          kill_at="online_candidate_registered")
        with pytest.raises(_Kill):
            first.pump(72)
            first.pump(200, shifted=True, stop_on_decision=True)
        second = _ChaosRig(root, pool, kill_at="online_canary_started")
        assert second.loop.restore() is True
        with pytest.raises(_Kill):
            second.loop.tick()
            _drive_to_completion(second)
        third = _ChaosRig(root, pool)
        assert third.loop.restore() is True
        third.loop.tick()
        _drive_to_completion(third)
        students = _student_versions(third.registry)
        assert len(students) == 1
        assert [d.action for d in third.controller.decisions] == ["promote"]
        assert _activation_history(third.registry) == control["history"]
        manifest = third.registry.manifest(students[0])
        assert manifest.checkpoint_sha256 == control["checksum"]
