"""Tests for every baseline: greedy, TSP heuristic, GBDT, OSquare, deep."""

import numpy as np
import pytest

from repro.baselines import (
    DeepBaselineConfig,
    DeepRoute,
    DistanceGreedy,
    FDNET,
    GBDTBinaryClassifier,
    GBDTRegressor,
    Graph2Route,
    OSquare,
    RegressionTree,
    ShortestRouteTSP,
    TimeGreedy,
    estimate_effective_speed,
    nearest_neighbor_path,
    path_length,
    route_travel_times,
    two_opt,
)


def assert_valid_prediction(prediction, instance):
    assert sorted(prediction.route.tolist()) == list(range(instance.num_locations))
    assert prediction.arrival_times.shape == (instance.num_locations,)
    assert np.all(np.isfinite(prediction.arrival_times))


class TestGreedy:
    def test_time_greedy_orders_by_deadline(self, splits):
        train, _, test = splits
        model = TimeGreedy().fit(train)
        instance = test[0]
        prediction = model.predict(instance)
        deadlines = [instance.locations[i].deadline for i in prediction.route]
        assert deadlines == sorted(deadlines)
        assert_valid_prediction(prediction, instance)

    def test_distance_greedy_first_step_nearest(self, splits):
        train, _, test = splits
        model = DistanceGreedy().fit(train)
        instance = test[0]
        prediction = model.predict(instance)
        distances = [loc.distance_to(*instance.courier_position)
                     for loc in instance.locations]
        assert prediction.route[0] == int(np.argmin(distances))
        assert_valid_prediction(prediction, instance)

    def test_arrival_times_monotone_along_predicted_route(self, splits):
        train, _, test = splits
        model = DistanceGreedy().fit(train)
        prediction = model.predict(test[0])
        ordered = prediction.arrival_times[prediction.route]
        assert np.all(np.diff(ordered) >= 0)

    def test_speed_estimation_positive(self, splits):
        train, _, _ = splits
        speed = estimate_effective_speed(train)
        assert 10 < speed < 1000

    def test_route_travel_times_rejects_bad_speed(self, dataset):
        with pytest.raises(ValueError):
            route_travel_times(dataset[0], dataset[0].route, speed=0.0)

    def test_explicit_speed_respected(self, dataset):
        instance = dataset[0]
        slow = TimeGreedy(speed=50.0).predict(instance)
        fast = TimeGreedy(speed=500.0).predict(instance)
        assert slow.arrival_times.max() > fast.arrival_times.max()


class TestTSP:
    def test_two_opt_never_worse(self, rng):
        for _ in range(10):
            coords = rng.random((8, 2)) * 1000
            distance = np.linalg.norm(coords[:, None] - coords[None, :], axis=-1)
            start = rng.random(8) * 1000
            initial = nearest_neighbor_path(start, distance)
            improved = two_opt(initial, start, distance)
            assert (path_length(improved, start, distance)
                    <= path_length(initial, start, distance) + 1e-9)

    def test_two_opt_fixes_crossing(self):
        # Square visited in a crossing order: 2-opt must unknot it.
        distance = np.array([
            [0, 1, np.sqrt(2), 1],
            [1, 0, 1, np.sqrt(2)],
            [np.sqrt(2), 1, 0, 1],
            [1, np.sqrt(2), 1, 0],
        ])
        start = np.array([0.0, 10, 10, 10])
        crossed = np.array([0, 2, 1, 3])
        fixed = two_opt(crossed, start, distance)
        assert path_length(fixed, start, distance) < path_length(
            crossed, start, distance)

    def test_solver_prediction_valid(self, splits):
        train, _, test = splits
        model = ShortestRouteTSP().fit(train)
        for instance in list(test)[:3]:
            assert_valid_prediction(model.predict(instance), instance)

    def test_shorter_than_random_route(self, splits, rng):
        train, _, test = splits
        model = ShortestRouteTSP().fit(train)
        instance = test[0]
        from repro.data import pairwise_distance_matrix, geo_distance_meters
        distance = pairwise_distance_matrix(instance.location_coords())
        start = np.array([geo_distance_meters(*instance.courier_position, *l.coord)
                          for l in instance.locations])
        solved = model.solve(instance)
        random_route = rng.permutation(instance.num_locations)
        assert (path_length(solved, start, distance)
                <= path_length(random_route, start, distance) + 1e-9)


class TestGBDT:
    def test_tree_fits_step_function(self):
        x = np.linspace(0, 1, 200).reshape(-1, 1)
        y = (x[:, 0] > 0.5).astype(float)
        tree = RegressionTree(max_depth=2, min_samples_leaf=5).fit(x, y)
        prediction = tree.predict(x)
        assert np.mean((prediction - y) ** 2) < 0.01

    def test_tree_input_validation(self):
        with pytest.raises(ValueError):
            RegressionTree().fit(np.zeros(5), np.zeros(5))
        with pytest.raises(ValueError):
            RegressionTree().fit(np.zeros((5, 2)), np.zeros(4))

    def test_tree_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            RegressionTree().predict(np.zeros((2, 2)))

    def test_regressor_learns_linear(self, rng):
        x = rng.uniform(-1, 1, (300, 2))
        y = 3 * x[:, 0] - 2 * x[:, 1]
        model = GBDTRegressor(n_estimators=60, learning_rate=0.2).fit(x, y)
        prediction = model.predict(x)
        residual = np.mean((prediction - y) ** 2) / np.var(y)
        assert residual < 0.1

    def test_regressor_constant_target(self):
        x = np.random.default_rng(0).random((50, 2))
        model = GBDTRegressor(n_estimators=5).fit(x, np.full(50, 7.0))
        assert np.allclose(model.predict(x), 7.0, atol=1e-6)

    def test_classifier_separates_clusters(self, rng):
        x = np.vstack([rng.normal(-2, 0.5, (100, 2)), rng.normal(2, 0.5, (100, 2))])
        y = np.array([0.0] * 100 + [1.0] * 100)
        model = GBDTBinaryClassifier(n_estimators=20).fit(x, y)
        probability = model.predict_proba(x)
        accuracy = np.mean((probability > 0.5) == y)
        assert accuracy > 0.97

    def test_classifier_probabilities_bounded(self, rng):
        x = rng.normal(size=(50, 3))
        y = (x[:, 0] > 0).astype(float)
        model = GBDTBinaryClassifier(n_estimators=10).fit(x, y)
        probability = model.predict_proba(x)
        assert np.all((probability > 0) & (probability < 1))


class TestOSquare:
    def test_fit_predict_valid(self, splits):
        train, _, test = splits
        model = OSquare(n_estimators=8).fit(train[:20])
        for instance in list(test)[:3]:
            assert_valid_prediction(model.predict(instance), instance)

    def test_beats_random_route(self, splits, rng):
        train, _, test = splits
        from repro.metrics import kendall_rank_correlation
        model = OSquare(n_estimators=10).fit(train)
        model_krc, random_krc = [], []
        for instance in test:
            prediction = model.predict(instance)
            model_krc.append(kendall_rank_correlation(
                prediction.route, instance.route))
            random_krc.append(kendall_rank_correlation(
                rng.permutation(instance.num_locations), instance.route))
        assert np.mean(model_krc) > np.mean(random_krc)


@pytest.mark.parametrize("baseline_cls", [DeepRoute, FDNET, Graph2Route])
class TestDeepBaselines:
    def test_fit_predict_valid(self, baseline_cls, splits):
        train, _, test = splits
        config = DeepBaselineConfig(epochs=1, time_epochs=1)
        model = baseline_cls(config).fit(train[:8])
        for instance in list(test)[:2]:
            assert_valid_prediction(model.predict(instance), instance)

    def test_training_reduces_route_loss(self, baseline_cls, splits):
        from repro.metrics import kendall_rank_correlation
        train, _, _ = splits
        subset = train[:12]
        config = DeepBaselineConfig(epochs=4, time_epochs=1, seed=1)
        model = baseline_cls(config)
        untrained = [kendall_rank_correlation(model.predict(i).route, i.route)
                     for i in subset]
        model.fit(subset)
        trained = [kendall_rank_correlation(model.predict(i).route, i.route)
                   for i in subset]
        assert np.mean(trained) > np.mean(untrained)
