"""Tests for the deployment-style service layer (Section VI)."""

import numpy as np
import pytest

from repro.core import M2G4RTP, M2G4RTPConfig
from repro.service import (
    ETAService,
    OrderSortingService,
    RTPRequest,
    RTPService,
)


@pytest.fixture(scope="module")
def service():
    model = M2G4RTP(M2G4RTPConfig(hidden_dim=16, num_heads=2,
                                  num_encoder_layers=1))
    return RTPService(model)


@pytest.fixture
def request_obj(dataset):
    return RTPRequest.from_instance(dataset[0])


class TestRTPRequest:
    def test_from_instance_strips_labels(self, dataset):
        request = RTPRequest.from_instance(dataset[0])
        assert not hasattr(request, "route")
        assert request.num_locations == dataset[0].num_locations

    def test_rejects_empty(self, dataset):
        instance = dataset[0]
        with pytest.raises(ValueError):
            RTPRequest(courier=instance.courier, request_time=0.0,
                       courier_position=(120.0, 30.0), locations=[], aois=[])

    def test_rejects_unknown_aoi(self, dataset):
        instance = dataset[0]
        with pytest.raises(ValueError):
            RTPRequest(
                courier=instance.courier,
                request_time=instance.request_time,
                courier_position=instance.courier_position,
                locations=list(instance.locations),
                aois=[],  # no AOIs at all
            )

    def test_duck_type_surface(self, request_obj, dataset):
        instance = dataset[0]
        assert np.allclose(request_obj.location_coords(),
                           instance.location_coords())
        assert np.array_equal(request_obj.aoi_index_of_location(),
                              instance.aoi_index_of_location())


class TestRTPService:
    def test_handle_returns_route_and_etas(self, service, request_obj):
        response = service.handle(request_obj)
        n = request_obj.num_locations
        assert sorted(response.route.tolist()) == list(range(n))
        assert response.eta_minutes.shape == (n,)
        assert response.latency_ms > 0
        assert response.aoi_route is not None

    def test_query_counter(self, service, request_obj):
        before = service.queries_served
        service.handle(request_obj)
        assert service.queries_served == before + 1


class TestOrderSorting:
    def test_positions_follow_route(self, service, request_obj):
        orders = OrderSortingService(service).sort_orders(request_obj)
        assert [o.position for o in orders] == list(
            range(1, request_obj.num_locations + 1))
        response = service.handle(request_obj)
        expected_ids = [request_obj.locations[i].location_id
                        for i in response.route]
        assert [o.location_id for o in orders] == expected_ids

    def test_entries_carry_deadlines(self, service, request_obj):
        orders = OrderSortingService(service).sort_orders(request_obj)
        for order in orders:
            assert np.isfinite(order.deadline_minutes)
            assert np.isfinite(order.eta_minutes)


class TestETAService:
    def test_entries_per_location(self, service, request_obj):
        entries = ETAService(service).etas(request_obj)
        assert len(entries) == request_obj.num_locations
        ids = {entry.location_id for entry in entries}
        assert ids == {loc.location_id for loc in request_obj.locations}

    def test_notify_ahead(self, service, request_obj):
        entries = ETAService(service, notify_ahead_minutes=5.0).etas(request_obj)
        for entry in entries:
            assert entry.notify_at_minutes <= entry.eta_minutes
            assert entry.notify_at_minutes >= 0

    def test_negative_notify_rejected(self, service):
        with pytest.raises(ValueError):
            ETAService(service, notify_ahead_minutes=-1.0)

    def test_overdue_flag(self, service, request_obj):
        entries = ETAService(service).etas(request_obj)
        for entry, location in zip(entries, request_obj.locations):
            expected = entry.eta_minutes > (location.deadline
                                            - request_obj.request_time)
            assert entry.overdue_risk == expected
