"""Smoke checks for the example scripts.

Examples are exercised end-to-end manually (they train real models);
here we guarantee they at least parse, import only public API, and
carry usage documentation.
"""

import ast
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_present():
    names = {path.name for path in EXAMPLE_FILES}
    assert {"quickstart.py", "order_sorting_service.py",
            "eta_service.py", "compare_baselines.py",
            "lade_pipeline.py", "dynamic_replay.py",
            "run_experiment.py"} <= names


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
class TestExampleFiles:
    def test_parses(self, path):
        ast.parse(path.read_text())

    def test_has_module_docstring(self, path):
        tree = ast.parse(path.read_text())
        assert ast.get_docstring(tree), f"{path.name} missing docstring"

    def test_has_main_guard(self, path):
        source = path.read_text()
        assert 'if __name__ == "__main__":' in source

    def test_imports_only_repro_and_stdlib(self, path):
        tree = ast.parse(path.read_text())
        allowed_roots = {"repro", "numpy", "sys", "tempfile", "pathlib"}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                roots = {alias.name.split(".")[0] for alias in node.names}
            elif isinstance(node, ast.ImportFrom):
                roots = {(node.module or "").split(".")[0]}
            else:
                continue
            assert roots <= allowed_roots, (
                f"{path.name} imports outside the public surface: {roots}")
