"""Property-based invariants of the full model over random instances."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import M2G4RTP, M2G4RTPConfig, RTPTargets
from repro.data import GeneratorConfig, SyntheticWorld
from repro.graphs import GraphBuilder
from repro.nn import parameter_table, count_parameters_by_module


@pytest.fixture(scope="module")
def shared_model():
    return M2G4RTP(M2G4RTPConfig(hidden_dim=16, num_heads=2,
                                 num_encoder_layers=1))


@pytest.fixture(scope="module")
def shared_world():
    return SyntheticWorld(GeneratorConfig(num_aois=30, num_couriers=3,
                                          num_days=2, seed=321))


class TestModelInvariants:
    @given(seed=st.integers(0, 500))
    @settings(max_examples=25, deadline=None)
    def test_prediction_always_valid(self, shared_model, shared_world, seed):
        """For any generated instance: routes are permutations at both
        levels and times are finite."""
        rng = np.random.default_rng(seed)
        instance = shared_world.generate_instance(seed % 3, day=0, rng=rng)
        graph = GraphBuilder().build(instance)
        output = shared_model.predict(graph)
        assert sorted(output.route.tolist()) == list(
            range(instance.num_locations))
        assert sorted(output.aoi_route.tolist()) == list(
            range(instance.num_aois))
        assert np.all(np.isfinite(output.arrival_times))
        assert np.all(np.isfinite(output.aoi_arrival_times))

    @given(seed=st.integers(0, 500))
    @settings(max_examples=15, deadline=None)
    def test_losses_finite_for_any_instance(self, shared_model,
                                            shared_world, seed):
        rng = np.random.default_rng(seed)
        instance = shared_world.generate_instance(seed % 3, day=0, rng=rng)
        graph = GraphBuilder().build(instance)
        output = shared_model(graph, RTPTargets.from_instance(instance))
        for name, loss in output.losses.items():
            assert np.isfinite(float(loss.data)), name

    def test_prediction_deterministic(self, shared_model, shared_world):
        rng = np.random.default_rng(5)
        instance = shared_world.generate_instance(0, day=0, rng=rng)
        graph = GraphBuilder().build(instance)
        a = shared_model.predict(graph)
        b = shared_model.predict(graph)
        assert np.array_equal(a.route, b.route)
        assert np.allclose(a.arrival_times, b.arrival_times)

    def test_input_order_permutation_changes_indices_not_set(
            self, shared_model, shared_world):
        """Permuting the input location order relabels indices; the set
        of predicted (location_id -> position) pairs may change (the
        decoder breaks ties by index), but the output stays a valid
        permutation and times stay finite."""
        rng = np.random.default_rng(9)
        instance = shared_world.generate_instance(0, day=0, rng=rng)
        import dataclasses
        perm = rng.permutation(instance.num_locations)
        inverse = np.argsort(perm)
        permuted = dataclasses.replace(
            instance,
            locations=[instance.locations[i] for i in perm],
            route=inverse[instance.route],
            arrival_times=instance.arrival_times[perm],
        )
        graph = GraphBuilder().build(permuted)
        output = shared_model.predict(graph)
        assert sorted(output.route.tolist()) == list(
            range(instance.num_locations))


class TestParameterTable:
    def test_table_totals(self, shared_model):
        table = parameter_table(shared_model)
        assert "total" in table
        total_line = table.splitlines()[-1]
        assert str(shared_model.num_parameters()) in total_line

    def test_group_counts_sum_to_total(self, shared_model):
        groups = count_parameters_by_module(shared_model)
        assert sum(groups.values()) == shared_model.num_parameters()
        assert "encoder" in groups

    def test_invalid_depth(self, shared_model):
        with pytest.raises(ValueError):
            parameter_table(shared_model, group_depth=0)
