"""Tests for RTPDataset splits/buckets and the LaDe-style CSV round trip."""

import numpy as np
import pytest

from repro.data import RTPDataset, SIZE_BUCKETS, read_csv, write_csv


class TestDataset:
    def test_len_iter_getitem(self, dataset):
        assert len(dataset) > 0
        assert dataset[0] is list(iter(dataset))[0]
        sliced = dataset[:3]
        assert isinstance(sliced, RTPDataset) and len(sliced) == 3

    def test_filter(self, dataset):
        small = dataset.filter(lambda i: i.num_locations <= 5)
        assert all(i.num_locations <= 5 for i in small)

    def test_paper_scope_filter(self, dataset):
        scoped = dataset.filter_paper_scope(max_locations=10, max_aois=4)
        assert all(i.num_locations <= 10 and i.num_aois <= 4 for i in scoped)

    def test_buckets_partition_all(self, dataset):
        small = dataset.bucket("(3-10]")
        large = dataset.bucket("(10-20]")
        everything = dataset.bucket("all")
        assert len(everything) == len(dataset)
        covered = len(small) + len(large)
        tiny = dataset.filter(lambda i: i.num_locations <= 3)
        assert covered + len(tiny) == len(dataset)

    def test_unknown_bucket(self, dataset):
        with pytest.raises(KeyError):
            dataset.bucket("(0-99]")

    def test_split_by_day_chronological(self, dataset):
        train, val, test = dataset.split_by_day()
        assert len(train) + len(val) + len(test) == len(dataset)
        assert max(i.day for i in train) < min(i.day for i in val)
        assert max(i.day for i in val) < min(i.day for i in test)

    def test_split_empty_raises(self):
        with pytest.raises(ValueError):
            RTPDataset([]).split_by_day()

    def test_shuffled_preserves_multiset(self, dataset, rng):
        shuffled = dataset.shuffled(rng)
        assert len(shuffled) == len(dataset)
        assert {id(i) for i in shuffled} == {id(i) for i in dataset}

    def test_summary_fields(self, dataset):
        summary = dataset.summary()
        assert summary["num_instances"] == len(dataset)
        assert summary["mean_locations"] >= 3
        assert summary["mean_aois"] >= 1
        assert summary["mean_location_arrival_min"] > 0

    def test_summary_empty(self):
        assert RTPDataset([]).summary() == {"num_instances": 0}

    def test_size_buckets_constant(self):
        assert SIZE_BUCKETS["(3-10]"] == (3, 10)
        assert SIZE_BUCKETS["(10-20]"] == (10, 20)


class TestLaDeCSV:
    def test_roundtrip(self, dataset, tmp_path):
        path = tmp_path / "sample.csv"
        original = list(dataset)[:5]
        write_csv(original, path)
        loaded = read_csv(path)
        assert len(loaded) == 5
        for source, parsed in zip(original, loaded):
            assert parsed.num_locations == source.num_locations
            assert parsed.num_aois == source.num_aois
            assert np.array_equal(parsed.route, source.route)
            assert np.allclose(parsed.arrival_times, source.arrival_times)
            # The AOI *list order* is not preserved by the CSV format
            # (it is rebuilt in first-seen order); compare semantics.
            parsed_visit = [parsed.aois[i].aoi_id for i in parsed.aoi_route]
            source_visit = [source.aois[i].aoi_id for i in source.aoi_route]
            assert parsed_visit == source_visit
            parsed_eta = {parsed.aois[i].aoi_id: parsed.aoi_arrival_times[i]
                          for i in range(parsed.num_aois)}
            source_eta = {source.aois[i].aoi_id: source.aoi_arrival_times[i]
                          for i in range(source.num_aois)}
            for aoi_id, eta in source_eta.items():
                assert np.isclose(parsed_eta[aoi_id], eta)
            assert parsed.courier.courier_id == source.courier.courier_id
            assert parsed.weather == source.weather
            assert parsed.day == source.day
            for a, b in zip(parsed.locations, source.locations):
                assert a.location_id == b.location_id
                assert np.allclose(a.coord, b.coord)
                assert a.aoi_id == b.aoi_id

    def test_missing_columns_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("instance_id,day\n0,1\n")
        with pytest.raises(ValueError):
            read_csv(path)

    def test_loaded_instances_validate(self, dataset, tmp_path):
        path = tmp_path / "sample.csv"
        write_csv(list(dataset)[:3], path)
        for instance in read_csv(path):
            instance.validate()
