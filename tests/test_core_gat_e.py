"""Tests for the GAT-e attention layer and encoder stack."""

import numpy as np
import pytest

from repro.autodiff import Tensor, check_gradients
from repro.core import GATEEncoder, GATEHead, GATELayer


def random_graph(rng, n=5, d=8):
    nodes = Tensor(rng.normal(size=(n, d)), requires_grad=True)
    edges = Tensor(rng.normal(size=(n, n, d)), requires_grad=True)
    adjacency = rng.random((n, n)) > 0.4
    adjacency |= adjacency.T
    np.fill_diagonal(adjacency, True)
    return nodes, edges, adjacency


class TestGATEHead:
    def test_attention_rows_sum_to_one(self, rng):
        nodes, edges, adjacency = random_graph(rng)
        head = GATEHead(8, 4, rng)
        alpha = head.attention(nodes, edges, adjacency)
        assert np.allclose(alpha.data.sum(axis=1), 1.0)

    def test_attention_respects_mask(self, rng):
        nodes, edges, adjacency = random_graph(rng)
        head = GATEHead(8, 4, rng)
        alpha = head.attention(nodes, edges, adjacency)
        assert np.all(alpha.data[~adjacency] == 0.0)

    def test_edge_features_change_attention(self, rng):
        nodes, edges, adjacency = random_graph(rng)
        head = GATEHead(8, 4, rng)
        alpha1 = head.attention(nodes, edges, adjacency).data
        edges2 = Tensor(edges.data + rng.normal(size=edges.shape))
        alpha2 = head.attention(nodes, edges2, adjacency).data
        assert not np.allclose(alpha1, alpha2)

    def test_output_shapes(self, rng):
        nodes, edges, adjacency = random_graph(rng, n=6, d=8)
        head = GATEHead(8, 4, rng)
        node_update, edge_update, alpha = head(nodes, edges, adjacency)
        assert node_update.shape == (6, 4)
        assert edge_update.shape == (6, 6, 4)
        assert alpha.shape == (6, 6)

    def test_gradcheck_small(self, rng):
        nodes = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        edges = Tensor(rng.normal(size=(3, 3, 4)), requires_grad=True)
        adjacency = np.ones((3, 3), dtype=bool)
        head = GATEHead(4, 2, rng)

        def fn():
            node_update, edge_update, _ = head(nodes, edges, adjacency)
            return (node_update ** 2).sum() + (edge_update ** 2).sum()

        check_gradients(fn, [nodes, edges] + head.parameters())


class TestGATELayer:
    def test_concat_layer_preserves_dim(self, rng):
        nodes, edges, adjacency = random_graph(rng, d=8)
        layer = GATELayer(8, num_heads=2, rng=rng, final=False)
        node_out, edge_out = layer(nodes, edges, adjacency)
        assert node_out.shape == (5, 8)
        assert edge_out.shape == (5, 5, 8)

    def test_concat_layer_nonnegative(self, rng):
        nodes, edges, adjacency = random_graph(rng, d=8)
        layer = GATELayer(8, num_heads=2, rng=rng, final=False)
        node_out, edge_out = layer(nodes, edges, adjacency)
        assert np.all(node_out.data >= 0)
        assert np.all(edge_out.data >= 0)

    def test_final_layer_averages_heads(self, rng):
        nodes, edges, adjacency = random_graph(rng, d=8)
        layer = GATELayer(8, num_heads=3, rng=rng, final=True)
        node_out, _ = layer(nodes, edges, adjacency)
        assert node_out.shape == (5, 8)
        assert np.all(node_out.data >= 0)

    def test_dim_divisibility_enforced(self, rng):
        with pytest.raises(ValueError):
            GATELayer(10, num_heads=3, rng=rng)

    def test_final_layer_any_heads(self, rng):
        GATELayer(10, num_heads=3, rng=rng, final=True)


class TestGATEEncoder:
    def test_requires_layer(self, rng):
        with pytest.raises(ValueError):
            GATEEncoder(8, 0, 2, rng)

    def test_output_shapes(self, rng):
        nodes, edges, adjacency = random_graph(rng, d=8)
        encoder = GATEEncoder(8, num_layers=2, num_heads=2, rng=rng)
        node_out, edge_out = encoder(nodes, edges, adjacency)
        assert node_out.shape == (5, 8)
        assert edge_out.shape == (5, 5, 8)

    def test_isolated_components_do_not_mix(self, rng):
        # Two disconnected cliques: changing one must not move the other.
        n, d = 6, 8
        adjacency = np.zeros((n, n), dtype=bool)
        adjacency[:3, :3] = True
        adjacency[3:, 3:] = True
        encoder = GATEEncoder(d, num_layers=2, num_heads=2, rng=rng)
        nodes = rng.normal(size=(n, d))
        edges = rng.normal(size=(n, n, d))
        base, _ = encoder(Tensor(nodes), Tensor(edges), adjacency)
        nodes2 = nodes.copy()
        nodes2[0] += 5.0
        # Also perturb edges touching node 0 only within its clique.
        moved, _ = encoder(Tensor(nodes2), Tensor(edges), adjacency)
        assert not np.allclose(base.data[:3], moved.data[:3])
        assert np.allclose(base.data[3:], moved.data[3:])

    def test_gradients_flow_to_all_parameters(self, rng):
        nodes, edges, adjacency = random_graph(rng, d=8)
        encoder = GATEEncoder(8, num_layers=2, num_heads=2, rng=rng)
        node_out, edge_out = encoder(nodes, edges, adjacency)
        ((node_out ** 2).sum() + (edge_out ** 2).sum()).backward()
        missing = [name for name, p in
                   [(f"p{i}", p) for i, p in enumerate(encoder.parameters())]
                   if p.grad is None]
        assert not missing
