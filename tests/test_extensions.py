"""Tests for scheduled sampling and the DeepETA time-only baseline."""

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.baselines import DeepBaselineConfig, DeepETA, DistanceGreedy
from repro.core import M2G4RTP, M2G4RTPConfig, RouteDecoder, RTPTargets
from repro.training import Trainer, TrainerConfig


class TestScheduledSampling:
    @pytest.fixture
    def decoder(self, rng):
        return RouteDecoder(node_dim=6, state_dim=8, courier_dim=3, rng=rng,
                            restrict_to_neighbors=False)

    def test_zero_prob_matches_teacher_forcing(self, decoder, rng):
        nodes = Tensor(rng.normal(size=(6, 6)))
        teacher = np.array([3, 1, 5, 0, 4, 2])
        output = decoder(nodes, Tensor(np.zeros(3)), teacher_route=teacher,
                         sample_prob=0.0)
        assert np.array_equal(output.route, teacher)
        assert np.array_equal(output.step_targets, teacher)

    def test_sampling_requires_rng(self, decoder, rng):
        nodes = Tensor(rng.normal(size=(4, 6)))
        with pytest.raises(ValueError):
            decoder(nodes, Tensor(np.zeros(3)),
                    teacher_route=np.arange(4), sample_prob=0.5)

    def test_full_sampling_still_supervised(self, decoder, rng):
        nodes = Tensor(rng.normal(size=(6, 6)))
        teacher = np.array([3, 1, 5, 0, 4, 2])
        output = decoder(nodes, Tensor(np.zeros(3)), teacher_route=teacher,
                         sample_prob=1.0, rng=np.random.default_rng(0))
        # The decoded route is the model's own choice (a permutation)...
        assert sorted(output.route.tolist()) == list(range(6))
        # ... while targets stay aligned with the true ordering: each
        # target is the earliest unvisited node of the teacher route.
        visited = set()
        rank = {int(node): position for position, node in enumerate(teacher)}
        for step in range(6):
            expected = min((i for i in range(6) if i not in visited),
                           key=lambda i: rank[i])
            assert output.step_targets[step] == expected
            visited.add(int(output.route[step]))

    def test_model_forward_with_sampling(self, graph, instance):
        model = M2G4RTP(M2G4RTPConfig(hidden_dim=16, num_heads=2,
                                      num_encoder_layers=1))
        output = model(graph, RTPTargets.from_instance(instance),
                       sample_prob=0.8, rng=np.random.default_rng(1))
        assert np.isfinite(float(output.total_loss.data))

    def test_trainer_with_scheduled_sampling(self, splits):
        train, _, _ = splits
        model = M2G4RTP(M2G4RTPConfig(hidden_dim=16, num_heads=2,
                                      num_encoder_layers=1))
        config = TrainerConfig(epochs=3, scheduled_sampling=0.5)
        history = Trainer(model, config).fit(train[:8])
        assert history.num_epochs == 3
        assert all(np.isfinite(loss) for loss in history.train_loss)


class TestDeepETA:
    def test_fit_predict_valid(self, splits):
        train, _, test = splits
        model = DeepETA(DeepBaselineConfig(epochs=2)).fit(train[:10])
        instance = test[0]
        prediction = model.predict(instance)
        assert sorted(prediction.route.tolist()) == list(
            range(instance.num_locations))
        assert prediction.arrival_times.shape == (instance.num_locations,)

    def test_route_comes_from_provider(self, splits):
        train, _, test = splits
        provider = DistanceGreedy()
        model = DeepETA(DeepBaselineConfig(epochs=1),
                        route_provider=provider).fit(train[:6])
        instance = test[0]
        assert np.array_equal(model.predict(instance).route,
                              provider.predict(instance).route)

    def test_training_improves_time_error(self, splits):
        from repro.metrics import mae
        train, _, _ = splits
        subset = train[:12]
        model = DeepETA(DeepBaselineConfig(epochs=4, seed=2))
        model.route_provider.fit(subset)

        def score():
            errors = []
            for instance in subset:
                prediction = model.predict(instance)
                errors.append(mae(prediction.arrival_times,
                                  instance.arrival_times))
            return float(np.mean(errors))

        before = score()
        model.fit(subset)
        after = score()
        assert after < before
