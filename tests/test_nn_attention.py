"""Tests for pointer attention, self-attention and the transformer block."""

import numpy as np
import pytest

from repro.autodiff import Tensor, check_gradients
from repro.nn import (
    AdditivePointerAttention,
    MultiHeadSelfAttention,
    TransformerEncoderLayer,
)


class TestPointerAttention:
    def test_scores_shape(self, rng):
        attention = AdditivePointerAttention(4, 6, 8, rng)
        scores = attention.scores(Tensor(np.zeros((5, 4))), Tensor(np.zeros(6)))
        assert scores.shape == (5,)

    def test_log_probs_normalized_over_mask(self, rng):
        attention = AdditivePointerAttention(4, 6, 8, rng)
        keys = Tensor(rng.normal(size=(5, 4)))
        query = Tensor(rng.normal(size=6))
        mask = np.array([True, False, True, True, False])
        log_probs = attention.log_probs(keys, query, mask)
        probs = np.exp(log_probs.data)
        assert np.isclose(probs[mask].sum(), 1.0)
        assert np.all(probs[~mask] < 1e-12)

    def test_all_masked_raises(self, rng):
        attention = AdditivePointerAttention(4, 6, 8, rng)
        with pytest.raises(ValueError):
            attention.log_probs(Tensor(np.zeros((3, 4))), Tensor(np.zeros(6)),
                                np.zeros(3, dtype=bool))

    def test_gradcheck(self, rng):
        attention = AdditivePointerAttention(3, 4, 5, rng)
        keys = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        query = Tensor(rng.normal(size=4), requires_grad=True)
        mask = np.array([True, True, False, True])

        def fn():
            return -attention.log_probs(keys, query, mask)[0]

        check_gradients(fn, [keys, query] + attention.parameters())


class TestMultiHeadSelfAttention:
    def test_dim_must_divide(self, rng):
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(10, 3, rng)

    def test_output_shape(self, rng):
        attention = MultiHeadSelfAttention(8, 2, rng)
        assert attention(Tensor(np.zeros((5, 8)))).shape == (5, 8)

    def test_permutation_equivariance(self, rng):
        attention = MultiHeadSelfAttention(8, 2, rng)
        x = rng.normal(size=(5, 8))
        perm = rng.permutation(5)
        out = attention(Tensor(x)).data
        out_perm = attention(Tensor(x[perm])).data
        assert np.allclose(out[perm], out_perm, atol=1e-8)

    def test_gradients_flow(self, rng):
        attention = MultiHeadSelfAttention(8, 2, rng)
        x = Tensor(rng.normal(size=(4, 8)), requires_grad=True)
        (attention(x) ** 2).sum().backward()
        assert x.grad is not None and np.any(x.grad != 0)


class TestTransformerEncoderLayer:
    def test_output_shape(self, rng):
        layer = TransformerEncoderLayer(8, 2, 16, rng)
        assert layer(Tensor(np.zeros((5, 8)))).shape == (5, 8)

    def test_residual_path_present(self, rng):
        # Output differs from a pure transform of zeros thanks to residual.
        layer = TransformerEncoderLayer(8, 2, 16, rng)
        x = rng.normal(size=(5, 8))
        out = layer(Tensor(x)).data
        assert not np.allclose(out, 0.0)
        # Residual keeps output correlated with input.
        corr = np.corrcoef(out.reshape(-1), x.reshape(-1))[0, 1]
        assert corr > 0.3

    def test_stacked_layers_trainable(self, rng):
        layer = TransformerEncoderLayer(8, 2, 16, rng)
        x = Tensor(rng.normal(size=(4, 8)), requires_grad=True)
        (layer(x) ** 2).sum().backward()
        grads = [p.grad for p in layer.parameters()]
        assert any(g is not None and np.any(g != 0) for g in grads)
