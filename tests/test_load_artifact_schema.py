"""Every scenario's JSON artifact validates against the checked-in schema.

Regression net for the machine-readable load artifacts: the schema
file (``src/repro/load/artifact_schema.json``) is the contract that CI
dashboards and cross-PR diffs rely on, so (a) every scenario the
library ships must produce a conforming artifact, (b) the validator
must actually *reject* broken artifacts (otherwise the contract is
decorative), and (c) artifact counts must reconcile with the shared
metrics registry the run wrote through.
"""

import copy
import json

import pytest

from repro.load import (ARTIFACT_KIND, SCENARIOS, SCHEMA_PATH,
                        SCHEMA_VERSION, ArtifactValidationError,
                        LoadRunConfig, load_schema, reconcile_with_registry,
                        run_scenario, validate_artifact, write_artifact)

CONFIG = LoadRunConfig(phase_duration_s=0.5)


@pytest.fixture(scope="module")
def results():
    """One deterministic virtual-clock run of every scenario."""
    return {name: run_scenario(name, CONFIG) for name in SCENARIOS}


# ----------------------------------------------------------------------
# Conformance of real artifacts
# ----------------------------------------------------------------------
def test_schema_file_is_checked_in():
    schema = load_schema()
    assert SCHEMA_PATH.name == "artifact_schema.json"
    assert schema["properties"]["schema_version"]["enum"] == [SCHEMA_VERSION]
    assert schema["properties"]["kind"]["enum"] == [ARTIFACT_KIND]


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_every_scenario_validates(results, name):
    validate_artifact(results[name].artifact)


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_every_scenario_reconciles_with_registry(results, name):
    result = results[name]
    reconcile_with_registry(result.artifact, result.context.metrics)


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_histogram_buckets_are_monotone(results, name):
    for phase in results[name].artifact["phases"]:
        histogram = phase["histogram_ms"]
        bounds = histogram["upper_bounds_ms"]
        counts = histogram["cumulative_counts"]
        assert len(bounds) == len(counts)
        assert bounds[-1] is None            # +Inf bucket, JSON-safe
        finite = [b for b in bounds[:-1]]
        assert all(b is not None for b in finite)
        assert finite == sorted(finite)
        assert all(b >= a for a, b in zip(counts, counts[1:]))
        assert counts[-1] == phase["requests"]


def test_artifact_roundtrips_through_disk(results, tmp_path):
    path = write_artifact(results["steady"].artifact,
                          tmp_path / "steady.json")
    reloaded = json.loads(path.read_text())
    validate_artifact(reloaded)
    assert reloaded == results["steady"].artifact


# ----------------------------------------------------------------------
# The validator must reject broken artifacts
# ----------------------------------------------------------------------
@pytest.fixture()
def artifact(results):
    return copy.deepcopy(results["surge"].artifact)


def _rejects(broken, match):
    with pytest.raises(ArtifactValidationError, match=match):
        validate_artifact(broken)


def test_missing_required_key_rejected(artifact):
    del artifact["totals"]
    _rejects(artifact, "missing key")


def test_missing_phase_key_rejected(artifact):
    del artifact["phases"][0]["histogram_ms"]
    _rejects(artifact, "missing key")


def test_unexpected_phase_key_rejected(artifact):
    artifact["phases"][0]["surprise"] = 1
    _rejects(artifact, "unexpected key")


def test_wrong_type_rejected(artifact):
    artifact["phases"][0]["requests"] = "twenty"
    _rejects(artifact, "expected type")


def test_negative_count_rejected(artifact):
    artifact["totals"]["shed"] = -1
    _rejects(artifact, "below minimum")


def test_unknown_kind_rejected(artifact):
    artifact["kind"] = "repro.load.other"
    _rejects(artifact, "not in")


def test_histogram_total_must_match_requests(artifact):
    artifact["phases"][0]["histogram_ms"]["cumulative_counts"][-1] += 1
    _rejects(artifact, "histogram total")


def test_histogram_monotonicity_enforced(artifact):
    counts = artifact["phases"][1]["histogram_ms"]["cumulative_counts"]
    counts[2], counts[3] = counts[3] + 1, counts[2]
    _rejects(artifact, "non-decreasing|histogram total")


def test_bucket_bound_order_enforced(artifact):
    bounds = artifact["phases"][0]["histogram_ms"]["upper_bounds_ms"]
    bounds[0], bounds[1] = bounds[1], bounds[0]
    _rejects(artifact, "sorted")


def test_degraded_reason_sum_must_match_total(artifact):
    surge_phase = artifact["phases"][1]
    surge_phase["degraded"]["by_reason"]["shed"] += 1
    _rejects(artifact, "per-reason sum")


def test_totals_must_match_phase_sums(artifact):
    artifact["totals"]["requests"] += 5
    _rejects(artifact, "phase sum")


def test_valid_plus_invalid_must_cover_requests(artifact):
    artifact["phases"][0]["valid_responses"] -= 1
    _rejects(artifact, "valid \\+ invalid")


def test_slo_verdict_must_match_violations(artifact):
    artifact["slo"]["passed"] = not artifact["slo"]["passed"]
    _rejects(artifact, "inconsistent with violations")


def test_reconciliation_detects_registry_drift(results):
    result = results["steady"]
    drifted = copy.deepcopy(result.artifact)
    drifted["phases"][0]["requests"] += 1
    # Keep internal invariants intact so only reconciliation trips.
    drifted["phases"][0]["valid_responses"] += 1
    with pytest.raises(ArtifactValidationError, match="registry counted"):
        reconcile_with_registry(drifted, result.context.metrics)
