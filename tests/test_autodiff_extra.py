"""Tests for the extra autodiff ops, RMSprop and cosine annealing."""

import numpy as np
import pytest

from repro.autodiff import (
    CosineAnnealingLR,
    RMSprop,
    SGD,
    Tensor,
    check_gradients,
    clip,
    l2_norm,
    logsumexp,
    min_reduce,
    minimum,
    softplus,
    tensor_pow,
)


class TestClip:
    def test_values(self):
        out = clip(Tensor([-5.0, 0.5, 5.0]), 0.0, 1.0)
        assert np.allclose(out.data, [0.0, 0.5, 1.0])

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            clip(Tensor([1.0]), 2.0, 1.0)

    def test_gradient_zero_outside(self):
        x = Tensor([-5.0, 0.5, 5.0], requires_grad=True)
        clip(x, 0.0, 1.0).sum().backward()
        assert np.allclose(x.grad, [0.0, 1.0, 0.0])

    def test_gradcheck_interior(self, rng):
        x = Tensor(rng.uniform(0.2, 0.8, size=5), requires_grad=True)
        check_gradients(lambda: (clip(x, 0.0, 1.0) ** 2).sum(), [x])


class TestLogsumexp:
    def test_matches_naive(self, rng):
        x = rng.normal(size=(3, 4))
        out = logsumexp(Tensor(x), axis=1)
        assert np.allclose(out.data, np.log(np.exp(x).sum(axis=1)))

    def test_stable_for_large_values(self):
        out = logsumexp(Tensor([1000.0, 1000.0]))
        assert np.isclose(out.item(), 1000.0 + np.log(2.0))

    def test_keepdims(self, rng):
        x = Tensor(rng.normal(size=(3, 4)))
        assert logsumexp(x, axis=1, keepdims=True).shape == (3, 1)
        assert logsumexp(x, axis=1).shape == (3,)

    def test_gradcheck(self, rng):
        x = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        check_gradients(lambda: logsumexp(x, axis=1).sum(), [x])


class TestMinOps:
    def test_minimum(self):
        out = minimum(Tensor([1.0, 5.0]), Tensor([3.0, 2.0]))
        assert np.allclose(out.data, [1.0, 2.0])

    def test_min_reduce(self, rng):
        x = rng.normal(size=(3, 4))
        assert np.allclose(min_reduce(Tensor(x), axis=1).data, x.min(axis=1))

    def test_min_reduce_gradcheck(self, rng):
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        check_gradients(lambda: min_reduce(x, axis=1).sum(), [x])


class TestPowAndNorms:
    def test_tensor_pow_values(self):
        out = tensor_pow(Tensor([2.0, 3.0]), Tensor([3.0, 2.0]))
        assert np.allclose(out.data, [8.0, 9.0])

    def test_tensor_pow_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            tensor_pow(Tensor([-1.0]), Tensor([2.0]))

    def test_tensor_pow_gradcheck(self, rng):
        base = Tensor(rng.uniform(0.5, 2.0, size=4), requires_grad=True)
        exponent = Tensor(rng.uniform(-1.0, 2.0, size=4), requires_grad=True)
        check_gradients(lambda: tensor_pow(base, exponent).sum(),
                        [base, exponent])

    def test_l2_norm(self):
        assert np.isclose(l2_norm(Tensor([3.0, 4.0])).item(), 5.0, atol=1e-5)

    def test_softplus_values(self):
        x = np.array([-50.0, 0.0, 50.0])
        out = softplus(Tensor(x))
        assert np.allclose(out.data, np.logaddexp(0.0, x))

    def test_softplus_gradcheck(self, rng):
        x = Tensor(rng.normal(size=4), requires_grad=True)
        check_gradients(lambda: softplus(x).sum(), [x])


class TestRMSprop:
    def test_converges_on_quadratic(self):
        target = np.array([2.0, -1.0])
        parameter = Tensor(np.zeros(2), requires_grad=True)
        optimizer = RMSprop([parameter], lr=0.05)
        for _ in range(300):
            optimizer.zero_grad()
            ((parameter - Tensor(target)) ** 2).sum().backward()
            optimizer.step()
        assert np.allclose(parameter.data, target, atol=0.05)


class TestCosineAnnealing:
    def test_endpoints(self):
        parameter = Tensor(np.zeros(1), requires_grad=True)
        optimizer = SGD([parameter], lr=1.0)
        schedule = CosineAnnealingLR(optimizer, total_epochs=10, min_lr=0.1)
        for _ in range(10):
            schedule.step()
        assert np.isclose(optimizer.lr, 0.1)

    def test_monotone_decrease(self):
        parameter = Tensor(np.zeros(1), requires_grad=True)
        optimizer = SGD([parameter], lr=1.0)
        schedule = CosineAnnealingLR(optimizer, total_epochs=8)
        rates = []
        for _ in range(8):
            schedule.step()
            rates.append(optimizer.lr)
        assert all(a >= b for a, b in zip(rates, rates[1:]))

    def test_invalid_epochs(self):
        parameter = Tensor(np.zeros(1), requires_grad=True)
        with pytest.raises(ValueError):
            CosineAnnealingLR(SGD([parameter], lr=1.0), total_epochs=0)

    def test_clamps_after_horizon(self):
        parameter = Tensor(np.zeros(1), requires_grad=True)
        optimizer = SGD([parameter], lr=1.0)
        schedule = CosineAnnealingLR(optimizer, total_epochs=3)
        for _ in range(10):
            schedule.step()
        assert np.isclose(optimizer.lr, 0.0, atol=1e-12)
