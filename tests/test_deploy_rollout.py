"""End-to-end rollout: canary auto-rollback/promote, shadow, CLI.

The acceptance scenario of the deployment subsystem: register ``v1``
and a ``v2`` in a real on-disk registry, drive real traffic through
the :class:`~repro.deploy.DeploymentController`, and check that

* a fault-injected ``v2`` canary is **auto-rolled-back** while
  availability stays 100% and degraded responses are flagged;
* a clean ``v2`` canary is **auto-promoted** under the same policy and
  persisted as the registry's ACTIVE version;
* shadow mode answers every request from the primary while recording
  candidate divergence.
"""

import numpy as np
import pytest

from repro.cli import main
from repro.core import M2G4RTP, M2G4RTPConfig
from repro.deploy import (
    DeploymentController,
    FaultInjector,
    FaultPlan,
    ModelRegistry,
    ResilienceConfig,
    RolloutPolicy,
)
from repro.service import RTPRequest


def tiny_model(seed: int) -> M2G4RTP:
    model = M2G4RTP(M2G4RTPConfig(
        hidden_dim=16, num_heads=2, num_encoder_layers=1,
        continuous_embed_dim=8, discrete_embed_dim=4, position_dim=4,
        courier_embed_dim=4, seed=seed))
    model.eval()
    return model


@pytest.fixture()
def registry(tmp_path):
    registry = ModelRegistry(tmp_path / "registry")
    registry.register(tiny_model(seed=11), created_at="t1", data_seed=123)
    registry.register(tiny_model(seed=29), created_at="t2", data_seed=123)
    return registry


@pytest.fixture(scope="module")
def trace(dataset):
    instances = list(dataset)
    return [RTPRequest.from_instance(instances[i % len(instances)])
            for i in range(60)]


def make_controller(registry, **policy_overrides):
    settings = dict(canary_fraction=0.5, min_requests=8,
                    max_degraded_rate=0.2)
    settings.update(policy_overrides)
    policy = RolloutPolicy(**settings)
    resilience = ResilienceConfig(deadline_ms=10_000.0,
                                  breaker_recovery_seconds=0.01)
    return DeploymentController(registry, policy=policy,
                                resilience=resilience,
                                initial="v001", seed=5)


def assert_valid(response, request):
    assert (sorted(int(i) for i in response.route)
            == list(range(request.num_locations)))
    assert len(response.eta_minutes) == request.num_locations
    assert np.all(np.isfinite(response.eta_minutes))


class TestCanaryRollout:
    def test_faulty_candidate_rolled_back_availability_100(self, registry,
                                                           trace):
        controller = make_controller(registry)
        injector = FaultInjector(FaultPlan(error_rate=0.9), seed=13)
        controller.start_canary("v002", fault_injector=injector)

        degraded_responses = 0
        for request in trace:
            response = controller.handle(request)
            assert_valid(response, request)       # availability: every one
            if response.degraded:
                degraded_responses += 1
                assert response.degraded_reason in (
                    "error", "breaker_open", "deadline", "shed")
                assert response.model_version == "v002"

        assert degraded_responses > 0, "faults must surface as degraded"
        actions = [d.action for d in controller.decisions]
        assert actions == ["rollback"]
        assert controller.active_version == "v001"
        assert registry.active() == "v001"
        assert controller.mode is None  # canary dismantled

    def test_clean_candidate_auto_promoted(self, registry, trace):
        controller = make_controller(registry)
        controller.start_canary("v002")
        for request in trace:
            response = controller.handle(request)
            assert_valid(response, request)
            assert not response.degraded
        actions = [d.action for d in controller.decisions]
        assert actions == ["promote"]
        assert controller.active_version == "v002"
        assert registry.active() == "v002"
        # A fresh controller comes back serving the promoted version.
        fresh = DeploymentController(registry, seed=0)
        assert fresh.active_version == "v002"

    def test_decision_records_metrics(self, registry, trace):
        controller = make_controller(registry)
        injector = FaultInjector(FaultPlan(error_rate=0.9), seed=13)
        controller.start_canary("v002", fault_injector=injector)
        for request in trace:
            controller.handle(request)
        decision = controller.decisions[0]
        assert decision.version == "v002"
        assert decision.candidate_requests >= 8
        assert decision.candidate_degraded_rate > 0.2
        text = controller.render_metrics()
        assert 'rtp_rollout_decisions_total{action="rollback"} 1' in text
        assert 'rtp_model_requests_total{version="v001"}' in text
        assert 'rtp_model_requests_total{version="v002"}' in text

    def test_recanary_after_rollback_judged_on_fresh_traffic(self, registry,
                                                             trace):
        # The shared registry's counters are cumulative; a second canary
        # of the same version must not inherit the degraded history of
        # the rolled-back first attempt.
        controller = make_controller(registry)
        injector = FaultInjector(FaultPlan(error_rate=0.9), seed=13)
        controller.start_canary("v002", fault_injector=injector)
        for request in trace:
            controller.handle(request)
        assert [d.action for d in controller.decisions] == ["rollback"]

        controller.start_canary("v002")  # same version, now healthy
        for request in trace:
            controller.handle(request)
        assert [d.action for d in controller.decisions] == [
            "rollback", "promote"]
        assert controller.active_version == "v002"
        assert registry.active() == "v002"

    def test_candidate_equal_to_primary_rejected(self, registry):
        controller = make_controller(registry)
        with pytest.raises(ValueError, match="already the serving primary"):
            controller.start_canary("v001")
        with pytest.raises(ValueError, match="already the serving primary"):
            controller.start_shadow("v001")
        assert controller.mode is None

    def test_canary_split_roughly_matches_fraction(self, registry, trace):
        controller = make_controller(registry, min_requests=10_000)
        controller.start_canary("v002")
        for request in trace:
            controller.handle(request)
        candidate_share = (controller.candidate.counts["requests"]
                           / len(trace))
        assert 0.25 < candidate_share < 0.75  # fraction is 0.5


class TestShadowRollout:
    def test_shadow_answers_from_primary_and_records_divergence(
            self, registry, trace):
        controller = make_controller(registry)
        controller.start_shadow("v002")
        for request in trace[:20]:
            response = controller.handle(request)
            assert_valid(response, request)
            assert response.model_version == "v001"  # client sees primary
        stats = controller.shadow_stats
        assert stats.requests == 20
        assert 0.0 <= stats.route_mismatch_rate <= 1.0
        assert stats.eta_mae >= 0.0
        # Differently-seeded weights should disagree somewhere.
        assert stats.route_mismatches > 0

    def test_shadow_candidate_faults_never_reach_client(self, registry,
                                                        trace):
        controller = make_controller(registry)
        injector = FaultInjector(FaultPlan(error_rate=1.0), seed=3)
        controller.start_shadow("v002", fault_injector=injector)
        for request in trace[:10]:
            response = controller.handle(request)
            assert_valid(response, request)
            assert not response.degraded  # primary path untouched
        assert controller.shadow_stats.degraded_candidate == 10


class TestDeployCLI:
    def test_register_list_promote_serve(self, registry, tmp_path, dataset,
                                         capsys):
        from repro.data import write_csv
        from repro.training import save_checkpoint
        import dataclasses as dc
        import json

        data_path = tmp_path / "data.csv"
        write_csv(list(dataset), data_path)
        model = tiny_model(seed=41)
        model_path = tmp_path / "model.npz"
        save_checkpoint(model, model_path)
        (tmp_path / "model.json").write_text(
            json.dumps(dc.asdict(model.config)))
        registry_dir = str(registry.root)

        assert main(["deploy", "register", "--registry", registry_dir,
                     "--model", str(model_path), "--version", "v003",
                     "--created-at", "t3",
                     "--metrics", '{"val_mae": 20.0}']) == 0
        assert main(["deploy", "list", "--registry", registry_dir]) == 0
        listing = capsys.readouterr().out
        assert "v003" in listing and "val_mae=20" in listing

        assert main(["deploy", "promote", "--registry", registry_dir,
                     "--version", "v001"]) == 0
        assert main(["deploy", "promote", "--registry", registry_dir,
                     "--version", "v003"]) == 0
        assert main(["deploy", "rollback", "--registry", registry_dir]) == 0
        assert registry.active() == "v001"
        capsys.readouterr()

        metrics_path = tmp_path / "deploy_metrics.prom"
        assert main(["deploy", "serve", "--registry", registry_dir,
                     "--data", str(data_path), "--queries", "30",
                     "--candidate", "v003", "--canary-frac", "0.5",
                     "--min-requests", "8",
                     "--metrics-out", str(metrics_path)]) == 0
        out = capsys.readouterr().out
        assert "served 30 queries" in out
        assert "promote" in out
        assert registry.active() == "v003"
        assert "rtp_model_requests_total" in metrics_path.read_text()

    def test_serve_shadow_mode(self, registry, tmp_path, dataset, capsys):
        from repro.data import write_csv
        data_path = tmp_path / "data.csv"
        write_csv(list(dataset), data_path)
        assert main(["deploy", "serve", "--registry", str(registry.root),
                     "--data", str(data_path), "--queries", "10",
                     "--candidate", "v002", "--shadow"]) == 0
        out = capsys.readouterr().out
        assert "shadow divergence" in out


# ----------------------------------------------------------------------
# Benchmark smoke mode (CI-sized)
# ----------------------------------------------------------------------
def test_rollout_bench_smoke_mode(tmp_path, monkeypatch):
    """--smoke replays the rollout quickly and reports both rates."""
    import pathlib
    monkeypatch.syspath_prepend(
        str(pathlib.Path(__file__).resolve().parents[1] / "benchmarks"))
    import bench_deployment_rollout as bench

    monkeypatch.setattr(bench, "RESULTS_DIR", tmp_path)
    report = bench.run(num_requests=40, smoke=True)
    assert "availability" in report and "degraded" in report
    assert "rolled back : True" in report
    assert "promoted    : True" in report
