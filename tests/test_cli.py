"""End-to-end tests for the repro-rtp CLI."""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def workspace(tmp_path_factory):
    """Generate a small CSV + trained model usable by all CLI tests."""
    root = tmp_path_factory.mktemp("cli")
    csv = root / "data.csv"
    model = root / "model.npz"
    assert main(["generate", "--out", str(csv), "--aois", "25",
                 "--couriers", "3", "--days", "5", "--seed", "9"]) == 0
    assert main(["train", "--data", str(csv), "--out", str(model),
                 "--epochs", "2", "--quiet"]) == 0
    return csv, model


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate", "--out", "x.csv"])
        assert args.aois == 60 and args.seed == 0

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bogus"])


class TestCommands:
    def test_generate_writes_csv(self, workspace):
        csv, _ = workspace
        header = csv.read_text().splitlines()[0]
        assert "instance_id" in header and "arrival_minutes" in header

    def test_train_writes_model_and_config(self, workspace):
        _, model = workspace
        assert model.exists()
        config = json.loads(model.with_suffix(".json").read_text())
        assert config["hidden_dim"] == 32

    def test_info(self, workspace, capsys):
        csv, _ = workspace
        assert main(["info", "--data", str(csv)]) == 0
        out = capsys.readouterr().out
        assert "num_instances" in out
        assert "kernel_backend_active" in out
        assert "kernel_backend_fused" in out
        assert "kernel_backend_reference" in out

    def test_evaluate_kernels_flag_identical_output(self, workspace, capsys):
        """`--kernels reference` and `--kernels fused` agree exactly,
        and the flag round-trips through the dispatch layer."""
        from repro import kernels
        csv, model = workspace
        before = kernels.active_name()
        try:
            main(["evaluate", "--data", str(csv), "--model", str(model),
                  "--kernels", "reference"])
            assert kernels.active_name() == "reference"
            reference_out = capsys.readouterr().out
            main(["evaluate", "--data", str(csv), "--model", str(model),
                  "--kernels", "fused"])
            assert kernels.active_name() == "fused"
            fused_out = capsys.readouterr().out
        finally:
            kernels.use(before)
        assert reference_out == fused_out

    def test_kernels_flag_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--data", "x", "--model", "y",
                                       "--kernels", "turbo"])

    def test_evaluate(self, workspace, capsys):
        csv, model = workspace
        assert main(["evaluate", "--data", str(csv), "--model", str(model)]) == 0
        out = capsys.readouterr().out
        assert "HR@3" in out and "RMSE" in out

    def test_serve(self, workspace, capsys):
        csv, model = workspace
        assert main(["serve", "--data", str(csv), "--model", str(model),
                     "--queries", "2"]) == 0
        out = capsys.readouterr().out
        assert "ETA" in out and "served" in out

    def test_evaluate_missing_config(self, workspace, tmp_path):
        csv, model = workspace
        orphan = tmp_path / "orphan.npz"
        orphan.write_bytes(model.read_bytes())
        with pytest.raises(FileNotFoundError):
            main(["evaluate", "--data", str(csv), "--model", str(orphan)])

    def test_roundtrip_determinism(self, workspace, capsys):
        """Evaluating twice gives identical output (model is frozen)."""
        csv, model = workspace
        main(["evaluate", "--data", str(csv), "--model", str(model)])
        first = capsys.readouterr().out
        main(["evaluate", "--data", str(csv), "--model", str(model)])
        second = capsys.readouterr().out
        assert first == second
