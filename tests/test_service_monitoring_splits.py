"""Tests for service monitoring, courier splits and batched training."""

import numpy as np
import pytest

from repro.core import M2G4RTP, M2G4RTPConfig
from repro.data import cold_start_protocol, split_by_courier
from repro.service import (
    DEFAULT_BUCKETS,
    RTPRequest,
    RTPService,
    ServiceMonitor,
)
from repro.training import Trainer, TrainerConfig


@pytest.fixture(scope="module")
def monitor(dataset):
    model = M2G4RTP(M2G4RTPConfig(hidden_dim=16, num_heads=2,
                                  num_encoder_layers=1))
    return ServiceMonitor(RTPService(model))


class TestServiceMonitor:
    def test_counts_queries(self, monitor, dataset):
        before = monitor.stats().queries
        monitor.handle(RTPRequest.from_instance(dataset[0]))
        monitor.handle(RTPRequest.from_instance(dataset[1]))
        assert monitor.stats().queries == before + 2

    def test_latency_percentiles_ordered(self, monitor, dataset):
        for instance in list(dataset)[:5]:
            monitor.handle(RTPRequest.from_instance(instance))
        stats = monitor.stats()
        assert 0 < stats.p50_latency_ms <= stats.p95_latency_ms
        assert stats.p95_latency_ms <= stats.max_latency_ms

    def test_render_metrics_format(self, monitor, dataset):
        monitor.handle(RTPRequest.from_instance(dataset[0]))
        text = monitor.render_metrics()
        assert "rtp_queries_total" in text
        assert 'rtp_latency_ms_bucket{le="+Inf"}' in text
        # Cumulative histogram: the +Inf bucket equals the count.
        inf_line = [l for l in text.splitlines() if '+Inf' in l][0]
        count_line = [l for l in text.splitlines()
                      if l.startswith("rtp_latency_ms_count")][0]
        assert inf_line.split()[-1] == count_line.split()[-1]

    def test_reset(self, monitor, dataset):
        monitor.handle(RTPRequest.from_instance(dataset[0]))
        monitor.reset()
        assert monitor.stats().queries == 0

    def test_unsorted_buckets_rejected(self, monitor):
        with pytest.raises(ValueError):
            ServiceMonitor(monitor.service, buckets=(5.0, 1.0))

    def test_default_buckets_end_with_inf(self):
        assert DEFAULT_BUCKETS[-1] == float("inf")


class TestCourierSplits:
    def test_split_disjoint_couriers(self, dataset):
        seen, unseen = split_by_courier(dataset, holdout_fraction=0.25,
                                        seed=1)
        seen_ids = {i.courier.courier_id for i in seen}
        unseen_ids = {i.courier.courier_id for i in unseen}
        assert seen_ids and unseen_ids
        assert not seen_ids & unseen_ids
        assert len(seen) + len(unseen) == len(dataset)

    def test_invalid_fraction(self, dataset):
        with pytest.raises(ValueError):
            split_by_courier(dataset, holdout_fraction=0.0)

    def test_cold_start_protocol(self, dataset):
        train, seen_test, unseen_test = cold_start_protocol(dataset, seed=2)
        train_couriers = {i.courier.courier_id for i in train}
        unseen_couriers = {i.courier.courier_id for i in unseen_test}
        assert not train_couriers & unseen_couriers
        # Seen test shares couriers with training but (mostly) not days.
        seen_couriers = {i.courier.courier_id for i in seen_test}
        assert seen_couriers <= train_couriers
        assert len(train) > 0 and len(seen_test) > 0 and len(unseen_test) > 0

    def test_deterministic_given_seed(self, dataset):
        a1, b1 = split_by_courier(dataset, seed=3)
        a2, b2 = split_by_courier(dataset, seed=3)
        assert len(a1) == len(a2) and len(b1) == len(b2)


class TestBatchedTraining:
    def test_batch_size_trains(self, splits):
        train, _, _ = splits
        model = M2G4RTP(M2G4RTPConfig(hidden_dim=16, num_heads=2,
                                      num_encoder_layers=1))
        config = TrainerConfig(epochs=3, batch_size=4)
        history = Trainer(model, config).fit(train[:12])
        assert history.num_epochs == 3
        assert history.train_loss[-1] < history.train_loss[0]

    def test_batch_equals_online_when_size_one(self, splits):
        """batch_size=1 must match the historical per-instance path."""
        train, _, _ = splits

        def run(batch_size):
            model = M2G4RTP(M2G4RTPConfig(hidden_dim=16, num_heads=2,
                                          num_encoder_layers=1, seed=8))
            config = TrainerConfig(epochs=2, batch_size=batch_size,
                                   shuffle_seed=4)
            history = Trainer(model, config).fit(train[:8])
            return history.train_loss

        assert np.allclose(run(1), run(1))
