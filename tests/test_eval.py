"""Tests for the evaluation harness: buckets, tables, profiler, cases."""

import numpy as np
import pytest

from repro.baselines import DistanceGreedy
from repro.eval import (
    COMPLEXITY,
    aoi_switch_count,
    baseline_predictor,
    build_case_study,
    evaluate_method,
    format_latency_table,
    format_table,
    model_predictor,
    profile_method,
    select_interesting_cases,
)


@pytest.fixture(scope="module")
def greedy_predictor(splits):
    train, _, _ = splits
    return baseline_predictor(DistanceGreedy().fit(train))


class TestEvaluateMethod:
    def test_bucket_reports(self, splits, greedy_predictor):
        _, _, test = splits
        evaluation = evaluate_method("greedy", greedy_predictor, test)
        assert "all" in evaluation.buckets
        report = evaluation.buckets["all"]
        assert 0 <= report.hr_at_3 <= 100
        assert -1 <= report.krc <= 1
        assert report.num_instances == len(test)

    def test_bucket_counts_sum(self, splits, greedy_predictor):
        _, _, test = splits
        evaluation = evaluate_method("greedy", greedy_predictor, test)
        total = evaluation.buckets["all"].num_instances
        partial = sum(
            evaluation.buckets[b].num_instances
            for b in ("(3-10]", "(10-20]") if b in evaluation.buckets)
        tiny = sum(1 for i in test if i.num_locations <= 3)
        assert partial + tiny == total

    def test_model_predictor_adapter(self, splits, graph):
        from repro.core import M2G4RTP, M2G4RTPConfig
        _, _, test = splits
        model = M2G4RTP(M2G4RTPConfig(hidden_dim=16, num_heads=2,
                                      num_encoder_layers=1))
        predictor = model_predictor(model)
        route, times = predictor(test[0])
        assert sorted(route.tolist()) == list(range(test[0].num_locations))
        assert times.shape == (test[0].num_locations,)

    def test_format_table_route_and_time(self, splits, greedy_predictor):
        _, _, test = splits
        evaluation = evaluate_method("greedy", greedy_predictor, test)
        route_table = format_table([evaluation], "route")
        time_table = format_table([evaluation], "time")
        assert "HR@3" in route_table and "greedy" in route_table
        assert "RMSE" in time_table

    def test_format_table_bad_kind(self, splits, greedy_predictor):
        _, _, test = splits
        evaluation = evaluate_method("greedy", greedy_predictor, test)
        with pytest.raises(ValueError):
            format_table([evaluation], "bogus")


class TestProfiler:
    def test_latency_report(self, splits, greedy_predictor):
        _, _, test = splits
        report = profile_method("Distance-Greedy", greedy_predictor,
                                list(test)[:5])
        assert report.mean_ms > 0
        assert report.p95_ms >= report.p50_ms * 0.5
        assert report.num_queries == 5
        assert report.complexity == COMPLEXITY["Distance-Greedy"]

    def test_empty_instances_rejected(self, greedy_predictor):
        with pytest.raises(ValueError):
            profile_method("x", greedy_predictor, [])

    def test_format_latency_table(self, splits, greedy_predictor):
        _, _, test = splits
        report = profile_method("Distance-Greedy", greedy_predictor,
                                list(test)[:3])
        table = format_latency_table([report])
        assert "Inference Time Complexity" in table
        assert "Distance-Greedy" in table


class TestCaseStudy:
    def test_selection_prefers_rich_instances(self, dataset):
        cases = select_interesting_cases(list(dataset), count=2)
        assert len(cases) == 2
        assert cases[0].num_locations >= cases[1].num_locations
        assert all(case.num_aois >= 2 for case in cases)

    def test_build_and_render(self, splits, greedy_predictor):
        _, _, test = splits
        case = build_case_study(test[0], {"greedy": greedy_predictor})
        assert len(case.results) == 1
        text = case.render()
        assert "true route" in text and "greedy" in text
        assert np.isfinite(case.results[0].rmse)

    def test_aoi_switch_count(self):
        aoi_of = np.array([0, 0, 1, 1])
        assert aoi_switch_count(np.array([0, 1, 2, 3]), aoi_of) == 1
        assert aoi_switch_count(np.array([0, 2, 1, 3]), aoi_of) == 3
