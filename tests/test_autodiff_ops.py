"""Unit + property tests for the functional autodiff operations."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.autodiff import (
    Tensor,
    as_tensor,
    check_gradients,
    concat,
    cross_entropy,
    dropout,
    huber_loss,
    log_softmax,
    mae_loss,
    maximum,
    mse_loss,
    softmax,
    stack,
    where,
)


class TestJoins:
    def test_concat_values(self):
        out = concat([Tensor([1.0, 2.0]), Tensor([3.0])], axis=0)
        assert np.allclose(out.data, [1, 2, 3])

    def test_concat_axis_last(self):
        a = Tensor(np.ones((2, 2)))
        b = Tensor(np.zeros((2, 3)))
        assert concat([a, b], axis=-1).shape == (2, 5)

    def test_concat_gradcheck(self, rng):
        a = Tensor(rng.normal(size=(2, 2)), requires_grad=True)
        b = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        check_gradients(lambda: (concat([a, b], axis=1) ** 2).sum(), [a, b])

    def test_stack_values(self):
        out = stack([Tensor([1.0, 2.0]), Tensor([3.0, 4.0])], axis=0)
        assert out.shape == (2, 2)
        assert np.allclose(out.data, [[1, 2], [3, 4]])

    def test_stack_gradcheck(self, rng):
        a = Tensor(rng.normal(size=3), requires_grad=True)
        b = Tensor(rng.normal(size=3), requires_grad=True)
        check_gradients(lambda: (stack([a, b], axis=1) ** 2).sum(), [a, b])

    def test_as_tensor_passthrough(self):
        x = Tensor([1.0])
        assert as_tensor(x) is x
        assert isinstance(as_tensor([1.0, 2.0]), Tensor)


class TestWhere:
    def test_where_values(self):
        cond = np.array([True, False, True])
        out = where(cond, Tensor([1.0, 1.0, 1.0]), Tensor([9.0, 9.0, 9.0]))
        assert np.allclose(out.data, [1, 9, 1])

    def test_where_gradcheck(self, rng):
        a = Tensor(rng.normal(size=4), requires_grad=True)
        b = Tensor(rng.normal(size=4), requires_grad=True)
        cond = np.array([True, False, False, True])
        check_gradients(lambda: (where(cond, a, b) ** 2).sum(), [a, b])

    def test_maximum(self):
        out = maximum(Tensor([1.0, 5.0]), Tensor([3.0, 2.0]))
        assert np.allclose(out.data, [3, 5])


class TestSoftmax:
    def test_softmax_sums_to_one(self, rng):
        p = softmax(Tensor(rng.normal(size=(4, 5))), axis=-1)
        assert np.allclose(p.data.sum(axis=-1), 1.0)

    def test_softmax_stability_large_logits(self):
        p = softmax(Tensor([1000.0, 1000.0, -1000.0]))
        assert np.isfinite(p.data).all()
        assert np.allclose(p.data[:2], 0.5)

    def test_softmax_mask_zeroes_invalid(self):
        mask = np.array([True, False, True])
        p = softmax(Tensor([1.0, 100.0, 1.0]), mask=mask)
        assert p.data[1] == 0.0
        assert np.allclose(p.data.sum(), 1.0)

    def test_softmax_gradcheck(self, rng):
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        w = rng.normal(size=(3, 4))
        check_gradients(lambda: (softmax(x, axis=-1) * Tensor(w)).sum(), [x])

    def test_log_softmax_matches_log_of_softmax(self, rng):
        x = Tensor(rng.normal(size=6))
        assert np.allclose(log_softmax(x).data, np.log(softmax(x).data))

    def test_log_softmax_mask(self):
        mask = np.array([True, True, False])
        lp = log_softmax(Tensor([0.0, 0.0, 50.0]), mask=mask)
        assert np.allclose(lp.data[:2], np.log(0.5))
        assert lp.data[2] < -1e20

    def test_log_softmax_gradcheck_masked(self, rng):
        x = Tensor(rng.normal(size=5), requires_grad=True)
        mask = np.array([True, False, True, True, False])
        w = rng.normal(size=5) * mask
        check_gradients(lambda: (log_softmax(x, mask=mask) * Tensor(w)).sum(), [x])

    @given(st.integers(2, 10))
    @settings(max_examples=20, deadline=None)
    def test_softmax_uniform_on_equal_logits(self, n):
        p = softmax(Tensor(np.zeros(n)))
        assert np.allclose(p.data, 1.0 / n)


class TestLosses:
    def test_cross_entropy_perfect_prediction(self):
        logits = Tensor([100.0, 0.0, 0.0])
        assert cross_entropy(logits, 0).item() < 1e-6

    def test_cross_entropy_uniform(self):
        loss = cross_entropy(Tensor(np.zeros(4)), 2)
        assert np.isclose(loss.item(), np.log(4))

    def test_cross_entropy_masked(self):
        mask = np.array([True, True, False, False])
        loss = cross_entropy(Tensor(np.zeros(4)), 1, mask=mask)
        assert np.isclose(loss.item(), np.log(2))

    def test_cross_entropy_gradcheck(self, rng):
        x = Tensor(rng.normal(size=5), requires_grad=True)
        check_gradients(lambda: cross_entropy(x, 2), [x])

    def test_mae_loss(self):
        pred = Tensor([1.0, 3.0])
        assert np.isclose(mae_loss(pred, np.array([2.0, 1.0])).item(), 1.5)

    def test_mse_loss(self):
        pred = Tensor([1.0, 3.0])
        assert np.isclose(mse_loss(pred, np.array([2.0, 1.0])).item(), 2.5)

    def test_huber_is_quadratic_near_zero(self):
        pred = Tensor([0.5])
        assert np.isclose(huber_loss(pred, np.array([0.0])).item(), 0.125)

    def test_huber_is_linear_in_tail(self):
        pred = Tensor([10.0])
        assert np.isclose(huber_loss(pred, np.array([0.0])).item(), 9.5)

    @pytest.mark.parametrize("loss_fn", [mae_loss, mse_loss, huber_loss])
    def test_loss_gradcheck(self, loss_fn, rng):
        x = Tensor(rng.normal(size=4) + 3.0, requires_grad=True)
        target = rng.normal(size=4)
        check_gradients(lambda: loss_fn(x, target), [x])

    @given(st.lists(st.floats(-100, 100), min_size=1, max_size=10))
    @settings(max_examples=30, deadline=None)
    def test_mae_nonnegative(self, values):
        loss = mae_loss(Tensor(values), np.zeros(len(values)))
        assert loss.item() >= 0


class TestDropout:
    def test_identity_when_not_training(self, rng):
        x = Tensor(np.ones(100))
        out = dropout(x, 0.5, rng, training=False)
        assert np.allclose(out.data, 1.0)

    def test_identity_at_zero_rate(self, rng):
        x = Tensor(np.ones(100))
        assert np.allclose(dropout(x, 0.0, rng).data, 1.0)

    def test_scales_kept_units(self, rng):
        x = Tensor(np.ones(10000))
        out = dropout(x, 0.5, rng, training=True)
        kept = out.data[out.data > 0]
        assert np.allclose(kept, 2.0)
        # About half survive.
        assert 0.4 < kept.size / 10000 < 0.6
