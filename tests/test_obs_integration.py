"""End-to-end observability tests: traced requests, shared registry,
trainer telemetry, and the ``repro-rtp obs`` CLI.

Includes the PR's acceptance check: a traced single-request span tree
contains graph-build, encoder, route-decode and time-decode spans whose
durations sum to within 10% of the recorded request latency.
"""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.core import M2G4RTP, M2G4RTPConfig
from repro.eval import LatencyReport, model_predictor, profile_method
from repro.obs import (
    EventLog,
    MetricsRegistry,
    OpProfiler,
    TraceCollector,
    disable_tracing,
    enable_tracing,
    read_jsonl,
)
from repro.service import RTPRequest, RTPService, ServiceMonitor
from repro.training import Trainer, TrainerConfig


@pytest.fixture(autouse=True)
def _tracing_off():
    disable_tracing()
    yield
    disable_tracing()


@pytest.fixture(scope="module")
def model():
    return M2G4RTP(M2G4RTPConfig(hidden_dim=16, num_heads=2,
                                 num_encoder_layers=1))


def _span_names(span, acc=None):
    acc = [] if acc is None else acc
    acc.append(span.name)
    for child in span.children:
        _span_names(child, acc)
    return acc


# ----------------------------------------------------------------------
# Traced request path
# ----------------------------------------------------------------------
class TestTracedRequests:
    def test_single_request_span_tree(self, model, dataset):
        """Acceptance criterion: the request span tree has graph-build,
        encoder, route-decode and time-decode spans, and their durations
        sum to within 10% of the recorded request latency."""
        service = RTPService(model)
        request = RTPRequest.from_instance(dataset[0])
        service.handle(request)  # warm up outside the trace
        collector = enable_tracing()
        response = service.handle(request)
        disable_tracing()

        assert len(collector.roots) == 1
        root = collector.roots[0]
        assert root.name == "rtp.request"
        names = _span_names(root)
        for required in ("graph_build", "encoder", "route_decode",
                         "time_decode"):
            assert required in names, f"missing span {required!r}"
        assert root.attrs["num_locations"] == request.num_locations

        build = next(c for c in root.children if c.name == "graph_build")
        infer = next(c for c in root.children if c.name == "infer")
        stage_sum = build.duration_ms + infer.duration_ms
        assert stage_sum == pytest.approx(response.latency_ms, rel=0.10), (
            f"span durations {stage_sum:.3f}ms vs recorded latency "
            f"{response.latency_ms:.3f}ms")
        # Decoder spans nest under infer and cover both levels.
        infer_names = _span_names(infer)
        assert infer_names.count("route_decode") == 2
        assert infer_names.count("time_decode") == 2

    def test_batch_span_tree(self, model, dataset):
        service = RTPService(model)
        requests = [RTPRequest.from_instance(i) for i in list(dataset)[:3]]
        collector = enable_tracing()
        service.handle_batch(requests)
        disable_tracing()
        root = collector.roots[0]
        assert root.name == "rtp.batch"
        assert root.attrs["batch_size"] == 3
        names = _span_names(root)
        assert names.count("graph_build") == 3
        assert "encoder" in names

    def test_untraced_requests_produce_no_spans(self, model, dataset):
        service = RTPService(model)
        service.handle(RTPRequest.from_instance(dataset[0]))
        collector = enable_tracing()
        disable_tracing()
        assert collector.roots == []


# ----------------------------------------------------------------------
# Monitor metrics through the shared registry
# ----------------------------------------------------------------------
class TestMonitorMetrics:
    def test_batch_error_counts_every_request(self, dataset):
        class FailingService:
            def handle_batch(self, requests):
                raise RuntimeError("engine down")

        monitor = ServiceMonitor(FailingService())
        requests = [RTPRequest.from_instance(i) for i in list(dataset)[:4]]
        with pytest.raises(RuntimeError):
            monitor.handle_batch(requests)
        # One error per enqueued request, not one per batch.
        assert monitor.stats().errors == 4

    def test_batch_size_and_route_length_exported(self, model, dataset):
        monitor = ServiceMonitor(RTPService(model))
        requests = [RTPRequest.from_instance(i) for i in list(dataset)[:3]]
        monitor.handle_batch(requests)
        text = monitor.render_metrics()
        assert "rtp_route_length_sum" in text
        assert "rtp_route_length_count 3" in text
        assert 'rtp_batch_size_bucket{le="4"} 1' in text
        assert "rtp_batch_size_count 1" in text

    def test_shared_registry_across_subsystems(self, model, dataset):
        """Monitor, trainer and op profiler all emit through one
        registry → one exposition."""
        registry = MetricsRegistry()
        monitor = ServiceMonitor(RTPService(model), registry=registry)
        monitor.handle(RTPRequest.from_instance(dataset[0]))

        small = M2G4RTP(M2G4RTPConfig(hidden_dim=8, num_heads=2,
                                      num_encoder_layers=1))
        trainer = Trainer(small, TrainerConfig(epochs=1), registry=registry)
        subset = type(dataset)(list(dataset)[:2])
        trainer.fit(subset)

        profiler = OpProfiler().start()
        monitor.handle(RTPRequest.from_instance(dataset[1]))
        profiler.stop()
        profiler.publish(registry)

        text = monitor.render_metrics()
        assert "rtp_queries_total 2" in text
        assert "rtp_train_epochs_total 1" in text
        assert "rtp_train_loss" in text
        assert "autodiff_op_calls_total" in text


# ----------------------------------------------------------------------
# Trainer telemetry
# ----------------------------------------------------------------------
class TestTrainerTelemetry:
    def test_event_log_and_registry(self, dataset, tmp_path):
        path = tmp_path / "events.jsonl"
        model = M2G4RTP(M2G4RTPConfig(hidden_dim=8, num_heads=2,
                                      num_encoder_layers=1))
        registry = MetricsRegistry()
        subset = type(dataset)(list(dataset)[:3])
        val = type(dataset)(list(dataset)[3:5])
        with EventLog(path) as log:
            Trainer(model, TrainerConfig(epochs=2),
                    event_log=log, registry=registry).fit(subset, val)
        records = read_jsonl(path)
        epochs = [r for r in records if r["type"] == "epoch"]
        fits = [r for r in records if r["type"] == "fit"]
        assert len(epochs) == 2 and len(fits) == 1
        for record in epochs:
            for field in ("train_loss", "val_loss", "grad_norm", "lr",
                          "seconds", "sigmas"):
                assert field in record
        assert epochs[0]["grad_norm"] > 0
        assert fits[0]["epochs"] == 2
        text = registry.render()
        assert "rtp_train_epochs_total 2" in text
        assert "rtp_train_grad_norm" in text
        assert 'rtp_train_sigma{task="aoi_route"}' in text
        assert "rtp_train_epoch_seconds_count 2" in text


# ----------------------------------------------------------------------
# Eval profiler
# ----------------------------------------------------------------------
class TestEvalProfiler:
    def test_p99_present_and_ordered(self, model, dataset):
        report = profile_method("M2G4RTP", model_predictor(model),
                                list(dataset)[:5], warmup=1)
        assert isinstance(report, LatencyReport)
        assert report.p50_ms <= report.p95_ms <= report.p99_ms
        assert "p99" not in report.row()  # row is values only
        assert f"{report.p99_ms:8.3f}" in report.row()

    def test_profiling_does_not_leak_global_tracing(self, model, dataset):
        """profile_method uses its own collector — the global one stays
        empty."""
        collector = enable_tracing()
        profile_method("M2G4RTP", model_predictor(model),
                       list(dataset)[:2], warmup=0)
        disable_tracing()
        assert all(root.name != "profile.predict"
                   for root in collector.roots)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def workspace(tmp_path_factory):
    root = tmp_path_factory.mktemp("obs_cli")
    csv = root / "data.csv"
    model = root / "model.npz"
    assert main(["generate", "--out", str(csv), "--aois", "20",
                 "--couriers", "3", "--days", "5", "--seed", "11"]) == 0
    assert main(["train", "--data", str(csv), "--out", str(model),
                 "--epochs", "2", "--quiet"]) == 0
    return root, csv, model


class TestCLI:
    def test_train_with_telemetry_flags(self, workspace, capsys):
        root, csv, _ = workspace
        events = root / "train_events.jsonl"
        metrics = root / "train_metrics.prom"
        out_model = root / "telemetry_model.npz"
        assert main(["train", "--data", str(csv), "--out", str(out_model),
                     "--epochs", "2", "--quiet",
                     "--events", str(events),
                     "--metrics-out", str(metrics)]) == 0
        records = read_jsonl(events)
        assert sum(r["type"] == "epoch" for r in records) == 2
        assert "rtp_train_epochs_total 2" in metrics.read_text()

    def test_serve_with_trace_metrics_and_profile(self, workspace, capsys):
        root, csv, model = workspace
        trace = root / "serve_trace.jsonl"
        metrics = root / "serve_metrics.prom"
        assert main(["serve", "--data", str(csv), "--model", str(model),
                     "--queries", "2", "--trace", str(trace),
                     "--metrics-out", str(metrics), "--profile-ops"]) == 0
        out = capsys.readouterr().out
        assert "top autodiff ops by self time" in out
        roots = read_jsonl(trace)
        assert roots and all(r["name"] == "rtp.request" for r in roots)
        text = metrics.read_text()
        assert "rtp_queries_total" in text
        assert "autodiff_op_calls_total" in text

    def test_obs_summarizes_trace(self, workspace, capsys):
        root, csv, model = workspace
        trace = root / "obs_trace.jsonl"
        main(["serve", "--data", str(csv), "--model", str(model),
              "--queries", "1", "--trace", str(trace)])
        capsys.readouterr()
        assert main(["obs", "--file", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "trace:" in out
        assert "rtp.request" in out
        assert "graph_build" in out and "encoder" in out

    def test_obs_summarizes_events(self, workspace, capsys):
        root, csv, _ = workspace
        events = root / "obs_events.jsonl"
        out_model = root / "obs_events_model.npz"
        main(["train", "--data", str(csv), "--out", str(out_model),
              "--epochs", "2", "--quiet", "--events", str(events)])
        capsys.readouterr()
        assert main(["obs", "--file", str(events)]) == 0
        out = capsys.readouterr().out
        assert "events:" in out and "epoch" in out

    def test_obs_empty_file(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["obs", "--file", str(empty)]) == 1
        assert "empty" in capsys.readouterr().out

    def test_obs_without_file_or_subcommand_errors(self, capsys):
        assert main(["obs"]) == 2
        assert "obs report" in capsys.readouterr().err

    def test_obs_report_detects_injected_shift(self, workspace, capsys):
        from repro.obs import validate_quality_artifact
        root, csv, model = workspace
        out = root / "quality_drift.json"
        assert main(["obs", "report", "--data", str(csv),
                     "--model", str(model), "--queries", "64",
                     "--window", "16", "--shift-after", "32",
                     "--shift-minutes", "480", "--out", str(out),
                     "--seed", "3"]) == 0
        printed = capsys.readouterr().out
        assert "verdict drift" in printed
        artifact = json.loads(out.read_text())
        validate_quality_artifact(artifact)
        assert artifact["verdict"] == "drift"
        assert artifact["observations"] == 64
        assert artifact["alarms"]
        assert artifact["alarms"][0]["observations"] > 32

    def test_obs_report_stable_without_shift(self, workspace, capsys):
        from repro.obs import validate_quality_artifact
        root, csv, model = workspace
        out = root / "quality_stable.json"
        assert main(["obs", "report", "--data", str(csv),
                     "--model", str(model), "--queries", "48",
                     "--window", "16", "--out", str(out),
                     "--seed", "3"]) == 0
        assert "verdict stable" in capsys.readouterr().out
        artifact = json.loads(out.read_text())
        validate_quality_artifact(artifact)
        assert artifact["alarms"] == []

    def test_obs_report_deterministic(self, workspace, capsys):
        root, csv, model = workspace
        first = root / "quality_a.json"
        second = root / "quality_b.json"
        for out in (first, second):
            assert main(["obs", "report", "--data", str(csv),
                         "--model", str(model), "--queries", "48",
                         "--window", "16", "--shift-after", "24",
                         "--out", str(out), "--seed", "7"]) == 0
        capsys.readouterr()
        assert first.read_text() == second.read_text()
