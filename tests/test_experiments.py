"""Tests for the declarative experiments package."""

import numpy as np
import pytest

from repro.experiments import (
    ExperimentResult,
    ExperimentSpec,
    KNOWN_METHODS,
    KNOWN_VARIANTS,
    REGISTRY,
    get_spec,
    run_experiment,
)


class TestSpecs:
    def test_registry_contains_paper_experiments(self):
        assert {"table3", "table4", "fig5", "smoke"} <= set(REGISTRY)

    def test_get_spec_unknown(self):
        with pytest.raises(KeyError):
            get_spec("bogus")

    def test_spec_rejects_unknown_method(self):
        with pytest.raises(ValueError):
            ExperimentSpec(name="x", description="", methods=("NotAModel",))

    def test_spec_rejects_unknown_variant(self):
        with pytest.raises(ValueError):
            ExperimentSpec(name="x", description="", methods=(),
                           variants=("w/o everything",))

    def test_all_table_methods_known(self):
        spec = get_spec("table3")
        assert set(spec.methods) <= set(KNOWN_METHODS)
        assert set(get_spec("fig5").variants) == set(KNOWN_VARIANTS)


@pytest.fixture(scope="module")
def smoke_result():
    return run_experiment("smoke")


class TestRunner:
    def test_smoke_runs_both_methods(self, smoke_result):
        assert set(smoke_result.metrics) == {"Distance-Greedy", "M2G4RTP"}
        assert smoke_result.seconds > 0

    def test_metric_grid_shape(self, smoke_result):
        for buckets in smoke_result.metrics.values():
            assert "all" in buckets
            assert {"hr_at_3", "krc", "lsd", "rmse", "mae",
                    "acc_at_20"} <= set(buckets["all"])

    def test_json_roundtrip(self, smoke_result, tmp_path):
        path = tmp_path / "result.json"
        smoke_result.save(path)
        loaded = ExperimentResult.load(path)
        assert loaded.spec_name == smoke_result.spec_name
        assert loaded.metrics == smoke_result.metrics

    def test_markdown_rendering(self, smoke_result):
        markdown = smoke_result.render_markdown("route")
        assert markdown.startswith("| Method |")
        assert "M2G4RTP" in markdown
        with pytest.raises(ValueError):
            smoke_result.render_markdown("bogus")

    def test_best_selector(self, smoke_result):
        winner = smoke_result.best("krc", higher_is_better=True)
        assert winner in smoke_result.metrics
        loser_metric = smoke_result.best("mae", higher_is_better=False)
        assert loser_metric in smoke_result.metrics

    def test_best_unknown_bucket(self, smoke_result):
        with pytest.raises(KeyError):
            smoke_result.best("krc", bucket="(99-100]")
