"""Tests for the route decoder, SortLSTM and AOI guidance helpers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.autodiff import Tensor
from repro.core import RouteDecoder, SortLSTM, positional_guidance


def make_decoder(rng, node_dim=6, restrict=False):
    return RouteDecoder(node_dim=node_dim, state_dim=8, courier_dim=3,
                        rng=rng, restrict_to_neighbors=restrict)


class TestRouteDecoder:
    def test_output_is_permutation(self, rng):
        decoder = make_decoder(rng)
        nodes = Tensor(rng.normal(size=(7, 6)))
        output = decoder(nodes, Tensor(np.zeros(3)))
        assert sorted(output.route.tolist()) == list(range(7))

    def test_step_log_probs_count(self, rng):
        decoder = make_decoder(rng)
        nodes = Tensor(rng.normal(size=(5, 6)))
        output = decoder(nodes, Tensor(np.zeros(3)))
        assert len(output.step_log_probs) == 5

    def test_teacher_forcing_follows_targets(self, rng):
        decoder = make_decoder(rng)
        nodes = Tensor(rng.normal(size=(6, 6)))
        teacher = np.array([3, 1, 5, 0, 4, 2])
        output = decoder(nodes, Tensor(np.zeros(3)), teacher_route=teacher)
        assert np.array_equal(output.route, teacher)

    def test_visited_nodes_masked(self, rng):
        decoder = make_decoder(rng)
        nodes = Tensor(rng.normal(size=(5, 6)))
        output = decoder(nodes, Tensor(np.zeros(3)))
        for step, log_probs in enumerate(output.step_log_probs):
            visited = output.route[:step]
            assert np.all(log_probs.data[visited] < -1e20)

    def test_single_node(self, rng):
        decoder = make_decoder(rng)
        output = decoder(Tensor(rng.normal(size=(1, 6))), Tensor(np.zeros(3)))
        assert output.route.tolist() == [0]

    def test_neighbor_restriction_falls_back(self, rng):
        decoder = make_decoder(rng, restrict=True)
        nodes = Tensor(rng.normal(size=(4, 6)))
        # Adjacency where node 0 has no neighbours at all: decoding must
        # still produce a full permutation via the fallback.
        adjacency = np.eye(4, dtype=bool)
        output = decoder(nodes, Tensor(np.zeros(3)), adjacency=adjacency)
        assert sorted(output.route.tolist()) == list(range(4))

    def test_neighbor_restriction_prefers_neighbors(self, rng):
        decoder = make_decoder(rng, restrict=True)
        nodes = Tensor(rng.normal(size=(4, 6)))
        # Ring adjacency 0-1-2-3.
        adjacency = np.zeros((4, 4), dtype=bool)
        for i in range(4):
            adjacency[i, (i + 1) % 4] = adjacency[(i + 1) % 4, i] = True
        output = decoder(nodes, Tensor(np.zeros(3)), adjacency=adjacency)
        # Every consecutive pair must be ring-adjacent or a fallback step.
        for a, b in zip(output.route[:-1], output.route[1:]):
            unvisited_neighbors = adjacency[a]
            if unvisited_neighbors.any():
                # The chosen successor is a neighbour whenever one existed.
                assert adjacency[a, b] or not np.any(
                    adjacency[a][np.setdiff1d(np.arange(4), output.route[:list(output.route).index(b)])])

    def test_loss_gradients_flow(self, rng):
        decoder = make_decoder(rng)
        nodes = Tensor(rng.normal(size=(4, 6)), requires_grad=True)
        teacher = np.array([2, 0, 3, 1])
        output = decoder(nodes, Tensor(np.zeros(3)), teacher_route=teacher)
        loss = sum((-lp[int(t)] for lp, t in zip(output.step_log_probs, teacher)),
                   Tensor(0.0))
        loss.backward()
        assert nodes.grad is not None and np.any(nodes.grad != 0)


class TestSortLSTM:
    def test_outputs_in_node_order(self, rng):
        sort_lstm = SortLSTM(6, 8, position_dim=4, rng=rng)
        nodes = Tensor(rng.normal(size=(5, 6)))
        route = np.array([4, 2, 0, 3, 1])
        times = sort_lstm(nodes, route)
        assert times.shape == (5,)

    def test_position_dim_validation(self, rng):
        with pytest.raises(ValueError):
            SortLSTM(6, 8, position_dim=1, rng=rng)

    def test_rejects_non_permutation(self, rng):
        sort_lstm = SortLSTM(6, 8, position_dim=4, rng=rng)
        nodes = Tensor(rng.normal(size=(3, 6)))
        with pytest.raises(ValueError):
            sort_lstm(nodes, np.array([0, 0, 2]))

    def test_route_order_changes_prediction(self, rng):
        sort_lstm = SortLSTM(6, 8, position_dim=4, rng=rng)
        nodes = Tensor(rng.normal(size=(4, 6)))
        a = sort_lstm(nodes, np.array([0, 1, 2, 3])).data
        b = sort_lstm(nodes, np.array([3, 2, 1, 0])).data
        assert not np.allclose(a, b)

    def test_scatter_correctness(self, rng):
        """The value predicted at step s lands on node route[s]."""
        sort_lstm = SortLSTM(6, 8, position_dim=4, rng=rng)
        nodes = Tensor(rng.normal(size=(4, 6)))
        route = np.array([2, 0, 3, 1])
        times = sort_lstm(nodes, route).data
        # Recompute step-ordered outputs directly.
        identity = sort_lstm(nodes[route], np.arange(4)).data
        assert np.allclose(times[route], identity)

    def test_not_forced_monotone(self, rng):
        """The paper stresses outputs are NOT constrained to increase."""
        candidates = []
        for seed in range(10):
            local = np.random.default_rng(seed)
            sort_lstm = SortLSTM(6, 8, position_dim=4, rng=local)
            nodes = Tensor(local.normal(size=(6, 6)) * 3)
            times = sort_lstm(nodes, np.arange(6)).data
            candidates.append(np.any(np.diff(times) < 0))
        assert any(candidates)

    def test_gradients_flow(self, rng):
        sort_lstm = SortLSTM(6, 8, position_dim=4, rng=rng)
        nodes = Tensor(rng.normal(size=(4, 6)), requires_grad=True)
        sort_lstm(nodes, np.arange(4)).sum().backward()
        assert nodes.grad is not None


class TestPositionalGuidance:
    def test_shape_and_values(self):
        route = np.array([2, 0, 1])
        guidance = positional_guidance(route, 4)
        assert guidance.shape == (3, 4)
        from repro.nn import sinusoidal_position_encoding
        # Node 2 is visited first -> position 1.
        assert np.allclose(guidance[2], sinusoidal_position_encoding(1, 4))
        assert np.allclose(guidance[0], sinusoidal_position_encoding(2, 4))
        assert np.allclose(guidance[1], sinusoidal_position_encoding(3, 4))

    @given(st.integers(1, 10))
    @settings(max_examples=20, deadline=None)
    def test_every_row_filled(self, n):
        rng = np.random.default_rng(n)
        route = rng.permutation(n)
        guidance = positional_guidance(route, 6)
        assert np.all(np.abs(guidance).sum(axis=1) > 0)
