"""Deployment subsystem units: registry, resilience, faults, fallback.

Covers the pieces of :mod:`repro.deploy` in isolation:

* ``ModelRegistry`` — manifests, ``latest``/pin/``active`` resolution,
  SHA-256 integrity rejection of corrupted checkpoints;
* hardened checkpointing — atomic save, truncated-file and
  architecture-mismatch errors that never half-apply;
* ``CircuitBreaker`` state machine on a fake clock;
* ``ResilientRTPService`` — retry-once, breaker-open degradation,
  deadline budget, queue shedding — against stub services, so every
  path is deterministic;
* ``FaultInjector`` determinism and ``FallbackPredictor`` validity.
"""

import numpy as np
import pytest

from repro.core import (
    FallbackPredictor,
    M2G4RTP,
    M2G4RTPConfig,
)
from repro.deploy import (
    CheckpointIntegrityError,
    CircuitBreaker,
    FaultInjector,
    FaultPlan,
    ModelRegistry,
    RegistryError,
    ResilienceConfig,
    ResilientRTPService,
    TransientServiceError,
    corrupt_checkpoint,
)
from repro.obs import MetricsRegistry
from repro.service import RTPRequest, RTPService
from repro.service.rtp_service import RTPResponse
from repro.training import CheckpointError, load_checkpoint, save_checkpoint


def tiny_config(seed: int = 3) -> M2G4RTPConfig:
    return M2G4RTPConfig(
        hidden_dim=16, num_heads=2, num_encoder_layers=1,
        continuous_embed_dim=8, discrete_embed_dim=4, position_dim=4,
        courier_embed_dim=4, seed=seed)


@pytest.fixture(scope="module")
def model():
    model = M2G4RTP(tiny_config())
    model.eval()
    return model


@pytest.fixture(scope="module")
def requests(dataset):
    return [RTPRequest.from_instance(instance)
            for instance in list(dataset)[:8]]


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ----------------------------------------------------------------------
# Checkpoint hardening (satellite)
# ----------------------------------------------------------------------
class TestCheckpointHardening:
    def test_save_is_atomic_no_temp_left(self, model, tmp_path):
        path = save_checkpoint(model, tmp_path / "model.npz")
        assert path.exists()
        leftovers = [p for p in tmp_path.iterdir() if p != path]
        assert leftovers == []

    def test_save_appends_npz_suffix(self, model, tmp_path):
        path = save_checkpoint(model, tmp_path / "model")
        assert path.name == "model.npz"
        clone = M2G4RTP(tiny_config(seed=9))
        load_checkpoint(clone, tmp_path / "model")  # same normalisation

    def test_truncated_file_raises_clear_error(self, model, tmp_path):
        path = save_checkpoint(model, tmp_path / "model.npz")
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        clone = M2G4RTP(tiny_config(seed=9))
        with pytest.raises(CheckpointError, match="corrupt or truncated"):
            load_checkpoint(clone, path)

    def test_missing_file_raises_file_not_found(self, model, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_checkpoint(model, tmp_path / "nope.npz")

    def test_mismatch_never_half_applies(self, tmp_path):
        big = M2G4RTP(M2G4RTPConfig(hidden_dim=24, num_heads=2,
                                    num_encoder_layers=1, seed=1))
        path = save_checkpoint(big, tmp_path / "big.npz")
        small = M2G4RTP(tiny_config(seed=2))
        before = {name: array.copy()
                  for name, array in small.state_dict().items()}
        with pytest.raises(CheckpointError):
            load_checkpoint(small, path)
        after = small.state_dict()
        for name, array in before.items():
            np.testing.assert_array_equal(array, after[name])

    def test_mismatch_error_names_parameters(self, model, tmp_path):
        path = save_checkpoint(model, tmp_path / "model.npz")
        other = M2G4RTP(M2G4RTPConfig(hidden_dim=24, num_heads=2,
                                      num_encoder_layers=1))
        with pytest.raises(CheckpointError) as excinfo:
            load_checkpoint(other, path)
        message = str(excinfo.value)
        assert "missing" in message or "shapes" in message


# ----------------------------------------------------------------------
# Model registry
# ----------------------------------------------------------------------
class TestModelRegistry:
    def test_register_and_load_roundtrip(self, model, tmp_path, dataset):
        registry = ModelRegistry(tmp_path / "reg")
        manifest = registry.register(
            model, created_at="2026-08-06T00:00:00Z",
            metrics={"val_mae": 21.5}, data_seed=123, notes="unit test")
        assert manifest.version == "v001"
        assert manifest.model_config["hidden_dim"] == 16
        assert registry.verify("v001")

        loaded, loaded_manifest = registry.load("v001")
        assert loaded_manifest.metrics == {"val_mae": 21.5}
        request = RTPRequest.from_instance(list(dataset)[0])
        original = model.predict(RTPService(model).builder.build(request))
        clone = loaded.predict(RTPService(loaded).builder.build(request))
        np.testing.assert_array_equal(original.route, clone.route)

    def test_latest_pin_and_active(self, model, tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        registry.register(model, created_at="t1")
        registry.register(model, created_at="t2")
        assert registry.versions() == ["v001", "v002"]
        assert registry.latest() == "v002"
        registry.pin("v001")
        assert registry.latest() == "v001"
        registry.unpin()
        assert registry.latest() == "v002"

        assert registry.active() is None
        registry.activate("v001")
        registry.activate("v002")
        assert registry.resolve("active") == "v002"
        assert registry.rollback_active() == "v001"
        assert registry.active() == "v001"

    def test_duplicate_and_unknown_versions_rejected(self, model, tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        registry.register(model, version="a", created_at="t")
        with pytest.raises(RegistryError, match="already registered"):
            registry.register(model, version="a", created_at="t")
        with pytest.raises(RegistryError, match="unknown version"):
            registry.manifest("ghost")
        with pytest.raises(RegistryError, match="invalid version"):
            registry.register(model, version="../escape", created_at="t")

    def test_corrupted_checkpoint_fails_integrity(self, model, tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        registry.register(model, created_at="t")
        corrupt_checkpoint(registry.checkpoint_path("v001"), seed=4)
        assert not registry.verify("v001")
        with pytest.raises(CheckpointIntegrityError, match="integrity"):
            registry.load("v001")


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def test_opens_after_threshold_and_recovers(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, recovery_seconds=10.0,
                                 clock=clock)
        assert breaker.state == "closed"
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open" and not breaker.allow()

        clock.advance(9.0)
        assert not breaker.allow()
        clock.advance(1.5)
        assert breaker.state == "half_open" and breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"

    def test_half_open_failure_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, recovery_seconds=5.0,
                                 clock=clock)
        breaker.record_failure()
        clock.advance(6.0)
        assert breaker.state == "half_open"
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.opens == 2

    def test_success_resets_streak(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"


# ----------------------------------------------------------------------
# Resilient service over stub backends (deterministic clocks)
# ----------------------------------------------------------------------
class StubService:
    """Scripted backend: each handle() consumes one step.

    A step is ``("ok", cost_s)`` or ``("fail", cost_s)``; the cost is
    applied to the fake clock so deadline logic is exact.  The script's
    last step repeats forever.
    """

    def __init__(self, clock: FakeClock, script):
        self.clock = clock
        self.script = list(script)
        self.calls = 0

    def handle(self, request):
        step = self.script[min(self.calls, len(self.script) - 1)]
        self.calls += 1
        kind, cost = step
        self.clock.advance(cost)
        if kind == "fail":
            raise TransientServiceError("scripted failure")
        return RTPResponse(
            route=np.arange(request.num_locations, dtype=np.int64),
            eta_minutes=np.ones(request.num_locations),
            aoi_route=None, aoi_eta_minutes=None, latency_ms=cost * 1000.0)


def make_resilient(clock, script, config=None, batcher=None, registry=None):
    return ResilientRTPService(
        StubService(clock, script), fallback=FallbackPredictor(),
        config=config or ResilienceConfig(), batcher=batcher,
        registry=registry, version="vtest", clock=clock)


class TestResilientService:
    def test_clean_path_passes_through(self, requests):
        clock = FakeClock()
        resilient = make_resilient(clock, [("ok", 0.001)])
        response = resilient.handle(requests[0])
        assert not response.degraded
        assert response.model_version == "vtest"
        assert resilient.counts["model"] == 1

    def test_retry_once_recovers_transient_failure(self, requests):
        clock = FakeClock()
        resilient = make_resilient(
            clock, [("fail", 0.001), ("ok", 0.001)])
        response = resilient.handle(requests[0])
        assert not response.degraded
        assert resilient.counts["retries"] == 1
        assert resilient.counts["errors"] == 1

    def test_double_failure_degrades_with_valid_answer(self, requests):
        clock = FakeClock()
        resilient = make_resilient(clock, [("fail", 0.001)])
        response = resilient.handle(requests[0])
        assert response.degraded and response.degraded_reason == "error"
        assert (sorted(int(i) for i in response.route)
                == list(range(requests[0].num_locations)))
        assert np.all(response.eta_minutes >= 0)

    def test_breaker_opens_then_serves_degraded(self, requests):
        clock = FakeClock()
        config = ResilienceConfig(breaker_failure_threshold=2,
                                  breaker_recovery_seconds=100.0,
                                  retry_transient=False)
        resilient = make_resilient(clock, [("fail", 0.001)], config=config)
        resilient.handle(requests[0])
        resilient.handle(requests[0])
        assert resilient.breaker.state == "open"
        backend = resilient.service
        calls_before = backend.calls
        response = resilient.handle(requests[0])
        assert response.degraded
        assert response.degraded_reason == "breaker_open"
        assert backend.calls == calls_before  # model never touched

    def test_every_request_answered_while_breaker_open(self, requests):
        clock = FakeClock()
        config = ResilienceConfig(breaker_failure_threshold=1,
                                  breaker_recovery_seconds=1e9,
                                  retry_transient=False)
        resilient = make_resilient(clock, [("fail", 0.001)], config=config)
        for request in requests:
            response = resilient.handle(request)
            assert (sorted(int(i) for i in response.route)
                    == list(range(request.num_locations)))
            assert len(response.eta_minutes) == request.num_locations
        assert resilient.counts["requests"] == len(requests)
        assert resilient.degraded_rate == 1.0

    def test_deadline_blown_serves_fallback(self, requests):
        clock = FakeClock()
        config = ResilienceConfig(deadline_ms=10.0)
        resilient = make_resilient(clock, [("ok", 0.050)], config=config)
        response = resilient.handle(requests[0])
        assert response.degraded and response.degraded_reason == "deadline"

    def test_queue_bound_sheds_load(self, requests):
        clock = FakeClock()

        class FullBatcher:
            pending = 99

        config = ResilienceConfig(max_queue_depth=10)
        resilient = make_resilient(clock, [("ok", 0.001)], config=config,
                                   batcher=FullBatcher())
        response = resilient.handle(requests[0])
        assert response.degraded and response.degraded_reason == "shed"

    def test_metrics_exported_per_version(self, requests):
        clock = FakeClock()
        registry = MetricsRegistry()
        resilient = make_resilient(
            clock, [("fail", 0.001)],
            config=ResilienceConfig(breaker_failure_threshold=1,
                                    breaker_recovery_seconds=1e9,
                                    retry_transient=False),
            registry=registry)
        resilient.handle(requests[0])
        resilient.handle(requests[0])
        text = registry.render()
        assert 'rtp_model_requests_total{version="vtest"} 2' in text
        assert 'rtp_degraded_total{version="vtest",reason="error"} 1' in text
        assert ('rtp_degraded_total{version="vtest",reason="breaker_open"} 1'
                in text)
        assert 'rtp_breaker_state{version="vtest"} 2' in text

    def test_handle_batch_degrades_per_member(self, requests):
        clock = FakeClock()
        resilient = make_resilient(clock, [("fail", 0.001)],
                                   config=ResilienceConfig(
                                       retry_transient=False))
        responses = resilient.handle_batch(requests[:3])
        assert len(responses) == 3
        assert all(r.degraded for r in responses)


# ----------------------------------------------------------------------
# Fault injection
# ----------------------------------------------------------------------
class TestFaultInjector:
    def test_same_seed_same_decisions(self):
        decisions = []
        for _ in range(2):
            injector = FaultInjector(FaultPlan(error_rate=0.5), seed=42,
                                     sleeper=lambda s: None)
            outcome = []
            for _ in range(20):
                try:
                    injector.before_call()
                    outcome.append("ok")
                except TransientServiceError:
                    outcome.append("fail")
            decisions.append(outcome)
        assert decisions[0] == decisions[1]
        assert "fail" in decisions[0] and "ok" in decisions[0]

    def test_fail_first_is_deterministic(self):
        injector = FaultInjector(FaultPlan(fail_first=2), seed=0)
        with pytest.raises(TransientServiceError):
            injector.before_call()
        with pytest.raises(TransientServiceError):
            injector.before_call()
        injector.before_call()  # third call passes
        assert injector.errors_injected == 2

    def test_latency_spikes_use_injected_sleeper(self):
        sleeps = []
        injector = FaultInjector(
            FaultPlan(spike_rate=1.0, latency_spike_ms=25.0),
            seed=1, sleeper=sleeps.append)
        injector.before_call()
        assert sleeps == [0.025]

    def test_wrap_forwards_attributes(self, model, requests):
        service = RTPService(model, cache_size=4)
        injector = FaultInjector(FaultPlan(), seed=0)
        faulty = injector.wrap(service)
        response = faulty.handle(requests[0])
        assert len(response.route) == requests[0].num_locations
        assert faulty.queries_served == 1
        assert faulty.cache is service.cache

    def test_invalid_plan_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(error_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(latency_spike_ms=-1.0)


# ----------------------------------------------------------------------
# Fallback predictor
# ----------------------------------------------------------------------
class TestFallbackPredictor:
    def test_valid_permutation_and_etas(self, requests):
        fallback = FallbackPredictor()
        for request in requests:
            prediction = fallback.predict(request)
            assert (sorted(int(i) for i in prediction.route)
                    == list(range(request.num_locations)))
            assert np.all(prediction.eta_minutes >= 0)
            # ETAs must be non-decreasing along the visit order.
            along_route = prediction.eta_minutes[prediction.route]
            assert np.all(np.diff(along_route) >= 0)

    def test_greedy_picks_nearest_first(self, requests):
        request = requests[0]
        fallback = FallbackPredictor()
        prediction = fallback.predict(request)
        distances = [loc.distance_to(*request.courier_position)
                     for loc in request.locations]
        assert int(prediction.route[0]) == int(np.argmin(distances))

    def test_from_dataset_speed_positive(self, dataset):
        fallback = FallbackPredictor.from_dataset(dataset)
        assert fallback.speed > 0

    def test_invalid_speed_rejected(self):
        with pytest.raises(ValueError):
            FallbackPredictor(speed=0.0)
