"""Tests for feed-forward layers and the Module/Parameter machinery."""

import numpy as np
import pytest

from repro.autodiff import Tensor, check_gradients
from repro.nn import (
    Dropout,
    Embedding,
    FeatureEncoder,
    LayerNorm,
    Linear,
    MLP,
    Module,
    Parameter,
)


class TestModule:
    def test_parameter_discovery_nested(self, rng):
        class Inner(Module):
            def __init__(self):
                super().__init__()
                self.w = Parameter(np.zeros(2))

        class Outer(Module):
            def __init__(self):
                super().__init__()
                self.inner = Inner()
                self.b = Parameter(np.zeros(3))
                self.layers = [Inner(), Inner()]

        outer = Outer()
        names = dict(outer.named_parameters())
        assert set(names) == {"inner.w", "b", "layers.0.w", "layers.1.w"}
        assert len(outer.parameters()) == 4
        assert outer.num_parameters() == 2 + 3 + 2 + 2

    def test_train_eval_propagates(self, rng):
        mlp = MLP([2, 3, 1], rng)
        mlp.eval()
        assert all(not m.training for m in mlp.modules())
        mlp.train()
        assert all(m.training for m in mlp.modules())

    def test_state_dict_roundtrip(self, rng):
        source = MLP([2, 4, 1], rng)
        target = MLP([2, 4, 1], np.random.default_rng(99))
        target.load_state_dict(source.state_dict())
        x = Tensor(rng.normal(size=(3, 2)))
        assert np.allclose(source(x).data, target(x).data)

    def test_load_state_dict_rejects_mismatch(self, rng):
        model = MLP([2, 4, 1], rng)
        state = model.state_dict()
        state.pop(next(iter(state)))
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_load_state_dict_rejects_bad_shape(self, rng):
        model = MLP([2, 4, 1], rng)
        state = model.state_dict()
        key = next(iter(state))
        state[key] = np.zeros((7, 7))
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_zero_grad(self, rng):
        model = MLP([2, 2, 1], rng)
        loss = model(Tensor(np.ones((1, 2)))).sum()
        loss.backward()
        assert any(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())

    def test_parameter_requires_grad_under_no_grad(self):
        from repro.autodiff import no_grad
        with no_grad():
            p = Parameter(np.zeros(2))
        assert p.requires_grad


class TestLinear:
    def test_shapes(self, rng):
        layer = Linear(4, 3, rng)
        assert layer(Tensor(np.zeros((5, 4)))).shape == (5, 3)
        assert layer(Tensor(np.zeros(4))).shape == (3,)
        assert layer(Tensor(np.zeros((2, 5, 4)))).shape == (2, 5, 3)

    def test_no_bias(self, rng):
        layer = Linear(4, 3, rng, bias=False)
        assert layer.bias is None
        assert np.allclose(layer(Tensor(np.zeros(4))).data, 0.0)

    def test_gradcheck(self, rng):
        layer = Linear(3, 2, rng)
        x = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        check_gradients(lambda: (layer(x) ** 2).sum(),
                        [x, layer.weight, layer.bias])


class TestEmbedding:
    def test_lookup(self, rng):
        table = Embedding(10, 4, rng)
        out = table(np.array([1, 1, 3]))
        assert out.shape == (3, 4)
        assert np.allclose(out.data[0], out.data[1])

    def test_scalar_index(self, rng):
        table = Embedding(10, 4, rng)
        assert table(3).shape == (4,)

    def test_out_of_range_raises(self, rng):
        table = Embedding(5, 2, rng)
        with pytest.raises(IndexError):
            table(np.array([5]))
        with pytest.raises(IndexError):
            table(np.array([-1]))

    def test_gradient_accumulates_for_repeated_index(self, rng):
        table = Embedding(5, 2, rng)
        out = table(np.array([2, 2])).sum()
        out.backward()
        assert np.allclose(table.weight.grad[2], 2.0)
        assert np.allclose(table.weight.grad[0], 0.0)


class TestLayerNorm:
    def test_output_standardized(self, rng):
        norm = LayerNorm(8)
        out = norm(Tensor(rng.normal(5.0, 3.0, size=(4, 8))))
        assert np.allclose(out.data.mean(axis=-1), 0.0, atol=1e-6)
        assert np.allclose(out.data.std(axis=-1), 1.0, atol=1e-2)

    def test_gradcheck(self, rng):
        norm = LayerNorm(4)
        x = Tensor(rng.normal(size=(2, 4)), requires_grad=True)
        check_gradients(lambda: (norm(x) ** 2).sum(), [x, norm.gamma, norm.beta])


class TestDropout:
    def test_invalid_rate(self, rng):
        with pytest.raises(ValueError):
            Dropout(1.0, rng)

    def test_eval_mode_identity(self, rng):
        layer = Dropout(0.5, rng)
        layer.eval()
        x = Tensor(np.ones(50))
        assert np.allclose(layer(x).data, 1.0)


class TestMLP:
    def test_requires_two_dims(self, rng):
        with pytest.raises(ValueError):
            MLP([4], rng)

    def test_forward_shape(self, rng):
        mlp = MLP([4, 8, 8, 2], rng)
        assert mlp(Tensor(np.zeros((3, 4)))).shape == (3, 2)

    def test_final_activation_nonnegative(self, rng):
        mlp = MLP([4, 8, 2], rng, final_activation=True)
        out = mlp(Tensor(rng.normal(size=(10, 4))))
        assert np.all(out.data >= 0)

    def test_gradcheck(self, rng):
        mlp = MLP([3, 4, 1], rng)
        x = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        check_gradients(lambda: (mlp(x) ** 2).sum(), [x] + mlp.parameters())


class TestFeatureEncoder:
    def test_output_dim(self, rng):
        enc = FeatureEncoder(5, [10, 4], continuous_out=8, discrete_out=3, rng=rng)
        assert enc.output_dim == 8 + 3 * 2
        out = enc(Tensor(np.zeros((6, 5))), np.zeros((6, 2), dtype=int))
        assert out.shape == (6, 14)

    def test_no_discrete(self, rng):
        enc = FeatureEncoder(5, [], continuous_out=8, discrete_out=3, rng=rng)
        assert enc.output_dim == 8
        assert enc(Tensor(np.zeros((2, 5)))).shape == (2, 8)

    def test_missing_discrete_raises(self, rng):
        enc = FeatureEncoder(5, [10], continuous_out=8, discrete_out=3, rng=rng)
        with pytest.raises(ValueError):
            enc(Tensor(np.zeros((2, 5))))
