"""Tests for the GRU cell and unrolled GRU."""

import numpy as np
import pytest

from repro.autodiff import Tensor, check_gradients
from repro.nn import GRU, GRUCell


class TestGRUCell:
    def test_shapes(self, rng):
        cell = GRUCell(4, 6, rng)
        assert cell(Tensor(np.zeros(4))).shape == (6,)
        assert cell(Tensor(np.zeros((3, 4)))).shape == (3, 6)

    def test_state_threading(self, rng):
        cell = GRUCell(4, 6, rng)
        x = Tensor(rng.normal(size=4))
        h1 = cell(x)
        h2 = cell(x, h1)
        assert not np.allclose(h1.data, h2.data)

    def test_bounded_output(self, rng):
        cell = GRUCell(4, 6, rng)
        h = cell(Tensor(rng.normal(size=4) * 100))
        assert np.all(np.abs(h.data) <= 1.0)

    def test_zero_update_gate_limits(self, rng):
        # With h=0 and candidate bounded, h' interpolates toward n.
        cell = GRUCell(3, 5, rng)
        h = cell(Tensor(np.zeros(3)))
        assert np.all(np.isfinite(h.data))

    def test_gradcheck(self, rng):
        cell = GRUCell(3, 2, rng)
        x = Tensor(rng.normal(size=3), requires_grad=True)

        def fn():
            h = cell(x)
            h = cell(x, h)
            return (h ** 2).sum()

        check_gradients(fn, [x, cell.weight_x, cell.weight_h, cell.bias])

    def test_fewer_parameters_than_lstm(self, rng):
        from repro.nn import LSTMCell
        gru = GRUCell(8, 16, rng)
        lstm = LSTMCell(8, 16, rng)
        assert gru.num_parameters() < lstm.num_parameters()


class TestGRU:
    def test_unroll_shapes(self, rng):
        gru = GRU(4, 6, rng)
        states, last = gru(Tensor(np.zeros((5, 4))))
        assert states.shape == (5, 6)
        assert last.shape == (6,)
        assert np.allclose(states.data[-1], last.data)

    def test_order_sensitivity(self, rng):
        gru = GRU(4, 6, rng)
        x = rng.normal(size=(5, 4))
        fwd, _ = gru(Tensor(x))
        rev, _ = gru(Tensor(x[::-1].copy()))
        assert not np.allclose(fwd.data[-1], rev.data[-1])

    def test_gradients_flow(self, rng):
        gru = GRU(3, 4, rng)
        x = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        states, _ = gru(x)
        (states ** 2).sum().backward()
        assert x.grad is not None and np.any(x.grad != 0)
