"""Prediction-quality telemetry: detectors, monitor, exemplars,
flight recorder, label-cardinality guard and the quality artifact.

Drift detectors are deterministic by construction (no internal RNG, an
injectable clock), so the tests assert exact firing observations for
seeded streams, and that stationary streams never alarm — the false
positives are the expensive failure mode for an auto-rollback consumer.
"""

import json

import numpy as np
import pytest

from repro.obs import (
    CompletedRoute,
    FlightRecorder,
    MetricsRegistry,
    PageHinkleyDetector,
    QualityMonitor,
    ReferenceWindowDetector,
    build_quality_artifact,
    disable_tracing,
    enable_tracing,
    validate_quality_artifact,
    write_quality_artifact,
)
from repro.obs.metrics import OVERFLOW_LABEL_VALUE
from repro.obs.quality import QualityArtifactError


@pytest.fixture(autouse=True)
def _tracing_off():
    disable_tracing()
    yield
    disable_tracing()


def stationary_stream(seed=0, n=300, loc=10.0, scale=1.0):
    return np.random.default_rng(seed).normal(loc, scale, n)


def shifted_stream(seed=0, n=200, shift_at=100, shift=50.0):
    values = stationary_stream(seed, n)
    values[shift_at:] += shift
    return values


# ----------------------------------------------------------------------
class TestPageHinkley:
    def test_stationary_stream_never_fires(self):
        detector = PageHinkleyDetector()
        for seed in range(4):
            detector.reset()
            fired = [detector.update(v)
                     for v in stationary_stream(seed=seed)]
            assert all(f is None for f in fired)

    def test_mean_shift_fires_and_is_deterministic(self):
        firing_indices = []
        for _ in range(2):
            detector = PageHinkleyDetector()
            fired_at = None
            for index, value in enumerate(shifted_stream()):
                if detector.update(value) is not None:
                    fired_at = index
                    break
            firing_indices.append(fired_at)
        assert firing_indices[0] is not None
        # Caught within a handful of observations of the shift point.
        assert 100 <= firing_indices[0] <= 110
        # Same stream, same firing observation — bit-reproducible.
        assert firing_indices[0] == firing_indices[1]

    def test_resets_after_firing_so_next_shift_realarm(self):
        # Reset-after-fire re-baselines on the post-shift level: one
        # shift yields one alarm, and a *further* shift alarms again.
        detector = PageHinkleyDetector(min_samples=5, threshold=10.0)
        fires = sum(
            detector.update(v) is not None
            for v in [0.0] * 10 + [100.0] * 30 + [500.0] * 30)
        assert fires == 2

    def test_min_samples_suppresses_early_fire(self):
        detector = PageHinkleyDetector(min_samples=50, threshold=1.0)
        assert all(detector.update(v) is None
                   for v in [0.0] * 10 + [100.0] * 10)

    def test_threshold_validated(self):
        with pytest.raises(ValueError):
            PageHinkleyDetector(threshold=0.0)


class TestReferenceWindow:
    def test_stationary_stream_never_fires(self):
        for seed in range(4):
            detector = ReferenceWindowDetector()
            fired = [detector.update(v)
                     for v in stationary_stream(seed=seed)]
            assert all(f is None for f in fired)

    def test_reference_freezes_after_reference_size(self):
        detector = ReferenceWindowDetector(reference_size=8, window_size=4)
        for value in stationary_stream(n=7):
            detector.update(value)
        assert not detector.reference_ready
        detector.update(10.0)
        assert detector.reference_ready

    def test_distribution_shift_fires_ks(self):
        detector = ReferenceWindowDetector(reference_size=16, window_size=8)
        fired = None
        for value in shifted_stream(n=80, shift_at=40):
            fired = detector.update(value)
            if fired is not None:
                break
        assert fired is not None
        assert fired["detector"] in ("ks", "psi")
        assert fired["statistic"] > fired["threshold"]

    def test_window_cleared_after_firing(self):
        detector = ReferenceWindowDetector(reference_size=8, window_size=4)
        fires = 0
        for value in [10.0] * 8 + [500.0] * 12:
            if detector.update(value) is not None:
                fires += 1
        # One alarm per window *fill*, not one per observation: 12
        # shifted values through a 4-wide window is at most 3 alarms.
        assert 1 <= fires <= 3

    def test_tiny_windows_rejected(self):
        with pytest.raises(ValueError):
            ReferenceWindowDetector(reference_size=2)
        with pytest.raises(ValueError):
            ReferenceWindowDetector(window_size=3)


# ----------------------------------------------------------------------
def completed(eta_error=0.0, labels=None, trace_id=None):
    """A 4-stop route predicted perfectly except a uniform ETA error."""
    actual = [10.0, 20.0, 30.0, 40.0]
    return CompletedRoute(
        predicted_route=[0, 1, 2, 3],
        actual_route=[0, 1, 2, 3],
        predicted_eta_minutes=[a + eta_error for a in actual],
        actual_arrival_minutes=actual,
        labels=labels or {}, trace_id=trace_id)


class TestQualityMonitor:
    def make_monitor(self, registry, **overrides):
        kwargs = dict(
            window=8,
            page_hinkley=PageHinkleyDetector(
                delta=1.0, threshold=30.0, min_samples=4),
            reference_window=ReferenceWindowDetector(
                reference_size=8, window_size=4,
                ks_threshold=0.8, psi_threshold=4.0),
        )
        kwargs.update(overrides)
        return QualityMonitor(registry, **kwargs)

    def test_route_scores(self):
        krc, lsd, eta_mae, eta_mape = QualityMonitor.route_scores(
            completed(eta_error=5.0))
        assert krc == pytest.approx(1.0)
        assert lsd == pytest.approx(0.0)
        assert eta_mae == pytest.approx(5.0)
        assert eta_mape == pytest.approx(
            np.mean([5 / 10, 5 / 20, 5 / 30, 5 / 40]))

    def test_gauges_published_per_segment(self):
        registry = MetricsRegistry()
        monitor = self.make_monitor(registry)
        monitor.record(completed(
            eta_error=3.0,
            labels={"weather": "2", "courier": "7",
                    "model_version": "v001"}))
        gauge = registry.get("rtp_quality_eta_mae")
        assert gauge.labels(segment="all", key="all").value == \
            pytest.approx(3.0)
        assert gauge.labels(segment="weather", key="2").value == \
            pytest.approx(3.0)
        assert gauge.labels(segment="courier", key="7").value == \
            pytest.approx(3.0)
        counter = registry.get("rtp_quality_routes_total")
        assert counter.labels(segment="model_version",
                              key="v001").value == 1

    def test_windowed_means_slide(self):
        registry = MetricsRegistry()
        monitor = self.make_monitor(registry, window=2)
        monitor.record(completed(eta_error=10.0))
        monitor.record(completed(eta_error=2.0))
        monitor.record(completed(eta_error=4.0))
        # Window of 2: the 10-minute route has slid out.
        gauge = registry.get("rtp_quality_eta_mae")
        assert gauge.labels(segment="all", key="all").value == \
            pytest.approx(3.0)

    def test_shift_raises_alarm_and_notifies_subscribers(self):
        registry = MetricsRegistry()
        monitor = self.make_monitor(registry)
        seen = []
        monitor.on_alarm(seen.append)
        for _ in range(12):
            monitor.record(completed(eta_error=2.0))
        raised = []
        for _ in range(8):
            raised += monitor.record(completed(eta_error=120.0))
        assert raised and monitor.alarms
        assert seen == monitor.alarms
        alarm = monitor.alarms[0]
        assert alarm.metric == "eta_mae"
        assert alarm.statistic > alarm.threshold
        assert registry.get(
            "rtp_quality_drift_alarms_total").labels(
                metric=alarm.metric, detector=alarm.detector,
                segment="all", key="all").value >= 1

    def test_clock_stamps_alarms(self):
        registry = MetricsRegistry()
        ticks = iter(range(100, 1000))
        monitor = self.make_monitor(
            registry, clock=lambda: float(next(ticks)))
        for _ in range(12):
            monitor.record(completed(eta_error=2.0))
        for _ in range(8):
            monitor.record(completed(eta_error=120.0))
        assert monitor.alarms[0].at >= 100.0

    def test_segment_summary_shape(self):
        registry = MetricsRegistry()
        monitor = self.make_monitor(registry)
        monitor.record(completed(eta_error=1.0, labels={"weather": "0"}))
        summary = monitor.segment_summary()
        assert set(summary) == {"all", "weather"}
        entry = summary["weather"]["0"]
        assert entry["routes"] == 1
        assert set(entry) == {"route_krc", "route_lsd", "eta_mae",
                              "eta_mape", "routes"}


# ----------------------------------------------------------------------
class TestCardinalityGuard:
    def test_overflow_clamps_and_warns_once(self):
        registry = MetricsRegistry()
        counter = registry.counter("per_courier_total", "unbounded labels",
                                   labels=("courier",), max_label_sets=3)
        counter.labels(courier="a").inc()
        counter.labels(courier="b").inc()
        counter.labels(courier="c").inc()
        with pytest.warns(RuntimeWarning, match="cardinality"):
            counter.labels(courier="d").inc()
        # Second overflow is silent (warned once per instrument).
        import warnings as warnings_module
        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            counter.labels(courier="e").inc()
        overflow = counter.labels(courier=OVERFLOW_LABEL_VALUE)
        assert overflow.value == 2
        # Existing label sets keep updating normally past the cap.
        counter.labels(courier="a").inc()
        assert counter.labels(courier="a").value == 2
        rendered = registry.render()
        assert 'courier="__overflow__"' in rendered
        assert 'courier="d"' not in rendered

    def test_quality_monitor_survives_unbounded_couriers(self):
        registry = MetricsRegistry()
        monitor = QualityMonitor(
            registry, window=4, segments=("courier",),
            page_hinkley=PageHinkleyDetector(min_samples=10 ** 9),
            reference_window=ReferenceWindowDetector())
        with pytest.warns(RuntimeWarning):
            for courier in range(400):
                monitor.record(completed(
                    eta_error=1.0, labels={"courier": str(courier)}))
        counter = registry.get("rtp_quality_routes_total")
        assert counter.labels(segment="courier",
                              key=OVERFLOW_LABEL_VALUE).value > 0


# ----------------------------------------------------------------------
class TestExemplars:
    def test_keeps_k_largest_with_trace_ids(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat_ms", "t", exemplars=3)
        for index, value in enumerate([5.0, 50.0, 1.0, 99.0, 7.0, 80.0]):
            histogram.observe(value, trace_id=f"t{index:06d}")
        entries = histogram.exemplars()
        assert [e["value"] for e in entries] == [99.0, 80.0, 50.0]
        assert entries[0]["trace_id"] == "t000003"

    def test_auto_captures_active_trace(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat_ms", "t", exemplars=2)
        collector = enable_tracing()
        with collector.span("request") as request_span:
            histogram.observe(42.0)
        entries = histogram.exemplars()
        assert entries[0]["trace_id"] == request_span.trace_id

    def test_no_trace_no_exemplar(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat_ms", "t", exemplars=2)
        histogram.observe(42.0)
        assert histogram.exemplars() == []
        assert histogram.count == 1


class TestFlightRecorder:
    def test_lookup_and_bound(self):
        recorder = FlightRecorder(capacity=3)
        for index in range(5):
            recorder.record(f"t{index}", {"payload": index})
        assert len(recorder) == 3
        assert "t0" not in recorder and "t1" not in recorder
        assert recorder.lookup("t4") == {"payload": 4}
        assert recorder.lookup("t0") is None

    def test_none_trace_id_is_noop(self):
        recorder = FlightRecorder(capacity=2)
        recorder.record(None, {"payload": 1})
        assert len(recorder) == 0

    def test_rerecord_refreshes_eviction_order(self):
        recorder = FlightRecorder(capacity=2)
        recorder.record("a", 1)
        recorder.record("b", 2)
        recorder.record("a", 3)
        recorder.record("c", 4)
        assert "a" in recorder and "b" not in recorder
        assert recorder.lookup("a") == 3


# ----------------------------------------------------------------------
class TestQualityArtifact:
    def make_monitor(self):
        registry = MetricsRegistry()
        monitor = QualityMonitor(
            registry, window=8,
            page_hinkley=PageHinkleyDetector(
                delta=1.0, threshold=30.0, min_samples=4),
            reference_window=ReferenceWindowDetector(
                reference_size=8, window_size=4))
        for _ in range(12):
            monitor.record(completed(eta_error=2.0,
                                     labels={"weather": "1"}))
        for _ in range(8):
            monitor.record(completed(eta_error=120.0,
                                     labels={"weather": "1"}))
        return monitor

    def test_round_trip(self, tmp_path):
        artifact = build_quality_artifact(
            self.make_monitor(), source="unit", seed=7)
        assert artifact["verdict"] == "drift"
        assert artifact["observations"] == 20
        assert artifact["alarms"]
        path = write_quality_artifact(artifact, tmp_path / "quality.json")
        loaded = json.loads(path.read_text())
        validate_quality_artifact(loaded)
        assert loaded == json.loads(
            json.dumps(artifact))  # JSON-stable (no float drift)

    def test_stable_verdict_without_alarms(self):
        registry = MetricsRegistry()
        monitor = QualityMonitor(registry, window=8)
        monitor.record(completed(eta_error=1.0))
        artifact = build_quality_artifact(monitor, source="unit", seed=0)
        assert artifact["verdict"] == "stable"
        assert artifact["alarms"] == []

    def test_validation_rejects_corruption(self):
        artifact = build_quality_artifact(
            self.make_monitor(), source="unit", seed=0)
        wrong_kind = dict(artifact, kind="something.else")
        with pytest.raises(QualityArtifactError):
            validate_quality_artifact(wrong_kind)
        missing = dict(artifact)
        del missing["verdict"]
        with pytest.raises(QualityArtifactError):
            validate_quality_artifact(missing)
        bad_verdict = dict(artifact, verdict="meh")
        with pytest.raises(QualityArtifactError):
            validate_quality_artifact(bad_verdict)
        bad_alarm = dict(artifact)
        bad_alarm["alarms"] = [dict(artifact["alarms"][0],
                                    detector="vibes")]
        with pytest.raises(QualityArtifactError):
            validate_quality_artifact(bad_alarm)
