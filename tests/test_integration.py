"""Integration tests: full pipelines from generation to evaluation."""

import numpy as np
import pytest

from repro.baselines import DistanceGreedy, TimeGreedy
from repro.core import M2G4RTP, M2G4RTPConfig
from repro.data import GeneratorConfig, RTPDataset, SyntheticWorld, read_csv, write_csv
from repro.eval import baseline_predictor, evaluate_method, model_predictor
from repro.service import ETAService, OrderSortingService, RTPRequest, RTPService
from repro.training import Trainer, TrainerConfig


@pytest.fixture(scope="module")
def trained(splits):
    train, val, _ = splits
    model = M2G4RTP(M2G4RTPConfig(hidden_dim=24, num_heads=2,
                                  num_encoder_layers=1, seed=5))
    trainer = Trainer(model, TrainerConfig(epochs=14, patience=6))
    history = trainer.fit(train, val)
    return model, history


class TestEndToEnd:
    def test_trained_model_beats_random_routes(self, trained, splits, rng):
        model, _ = trained
        _, _, test = splits
        from repro.metrics import kendall_rank_correlation
        predictor = model_predictor(model)
        model_scores, random_scores = [], []
        for instance in test:
            route, _ = predictor(instance)
            model_scores.append(
                kendall_rank_correlation(route, instance.route))
            random_scores.append(kendall_rank_correlation(
                rng.permutation(instance.num_locations), instance.route))
        assert np.mean(model_scores) > np.mean(random_scores) + 0.1

    def test_trained_model_beats_time_greedy_on_time(self, trained, splits):
        model, _ = trained
        train, _, test = splits
        ours = evaluate_method("ours", model_predictor(model), test)
        greedy = evaluate_method(
            "greedy", baseline_predictor(TimeGreedy().fit(train)), test)
        assert ours.buckets["all"].mae < greedy.buckets["all"].mae

    def test_history_converged(self, trained):
        _, history = trained
        assert history.train_loss[-1] < history.train_loss[0]

    def test_service_pipeline_on_trained_model(self, trained, splits):
        model, _ = trained
        _, _, test = splits
        service = RTPService(model)
        sorting = OrderSortingService(service)
        eta = ETAService(service)
        for instance in list(test)[:3]:
            request = RTPRequest.from_instance(instance)
            orders = sorting.sort_orders(request)
            assert len(orders) == instance.num_locations
            entries = eta.etas(request)
            assert len(entries) == instance.num_locations

    def test_csv_roundtrip_preserves_evaluation(self, splits, tmp_path):
        train, _, test = splits
        path = tmp_path / "test.csv"
        write_csv(list(test), path)
        reloaded = read_csv(path)
        baseline = DistanceGreedy().fit(train)
        original = evaluate_method(
            "greedy", baseline_predictor(baseline), test)
        roundtrip = evaluate_method(
            "greedy", baseline_predictor(baseline), reloaded)
        assert np.isclose(original.buckets["all"].hr_at_3,
                          roundtrip.buckets["all"].hr_at_3)
        assert np.isclose(original.buckets["all"].mae,
                          roundtrip.buckets["all"].mae, rtol=1e-6)

    def test_generation_scales(self):
        config = GeneratorConfig(num_aois=25, num_couriers=2, num_days=3,
                                 instances_per_courier_day=1, seed=77)
        dataset = RTPDataset(SyntheticWorld(config).generate())
        assert len(dataset) == 2 * 3 * 1
        for instance in dataset:
            instance.validate()
