"""Fuzz tests: random op chains checked against finite differences.

Hypothesis drives random compositions of differentiable operations;
the analytic gradient of each composed program must match central
finite differences.  This is the strongest guarantee the autodiff
engine gets — every unary/binary op participates, in random orders.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.autodiff import Tensor, check_gradients, concat, softmax, stack, where

# Unary ops safe on strictly positive inputs.
_UNARY = [
    lambda x: x.tanh(),
    lambda x: x.sigmoid(),
    lambda x: x.relu(),
    lambda x: x.leaky_relu(0.1),
    lambda x: x.tanh().exp(),      # bounded argument: no overflow when chained
    lambda x: (x * x + 0.5).log(),  # argument strictly positive
    lambda x: x.abs(),
    lambda x: x * 2.5 - 1.0,
    lambda x: (x * x) * 0.5,
    lambda x: x.reshape(-1).reshape(*x.shape),
]

_BINARY = [
    lambda a, b: a + b,
    lambda a, b: a - b,
    lambda a, b: a * b,
    lambda a, b: a / (b * b + 1.0),
    lambda a, b: concat([a, b], axis=0).sum(axis=0, keepdims=True)
    * Tensor(np.ones(a.shape)),
]


@st.composite
def op_programs(draw):
    """A random program: sequence of (kind, index) op picks."""
    length = draw(st.integers(1, 6))
    ops = []
    for _ in range(length):
        kind = draw(st.sampled_from(["unary", "binary"]))
        if kind == "unary":
            ops.append(("unary", draw(st.integers(0, len(_UNARY) - 1))))
        else:
            ops.append(("binary", draw(st.integers(0, len(_BINARY) - 1))))
    return ops


class TestFuzzGradients:
    @given(program=op_programs(), seed=st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_random_program_gradcheck(self, program, seed):
        rng = np.random.default_rng(seed)
        x = Tensor(rng.uniform(-0.9, 0.9, size=(2, 3)), requires_grad=True)
        y = Tensor(rng.uniform(-0.9, 0.9, size=(2, 3)), requires_grad=True)

        def fn():
            out = x
            for kind, index in program:
                if kind == "unary":
                    out = _UNARY[index](out)
                else:
                    out = _BINARY[index](out, y)
            # tanh keeps magnitudes sane; the y-term guarantees y always
            # participates even in all-unary programs.
            return (out.tanh()).sum() + (y * y).sum() * 0.01

        check_gradients(fn, [x, y], atol=5e-4, rtol=5e-3)

    @given(seed=st.integers(0, 10_000), n=st.integers(2, 6))
    @settings(max_examples=30, deadline=None)
    def test_softmax_weighted_sum_gradcheck(self, seed, n):
        rng = np.random.default_rng(seed)
        logits = Tensor(rng.normal(size=n), requires_grad=True)
        weights = rng.normal(size=n)

        def fn():
            return (softmax(logits) * Tensor(weights)).sum()

        check_gradients(fn, [logits])

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_where_stack_chain_gradcheck(self, seed):
        rng = np.random.default_rng(seed)
        a = Tensor(rng.normal(size=4), requires_grad=True)
        b = Tensor(rng.normal(size=4), requires_grad=True)
        condition = rng.random(4) > 0.5

        def fn():
            mixed = where(condition, a * 2.0, b + 1.0)
            return (stack([mixed, a + b], axis=0) ** 2).sum()

        check_gradients(fn, [a, b])

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_second_backward_accumulates(self, seed):
        """backward() twice doubles the gradient (accumulate semantics)."""
        rng = np.random.default_rng(seed)
        x = Tensor(rng.normal(size=3), requires_grad=True)
        loss = (x * x).sum()
        loss.backward()
        first = x.grad.copy()
        loss = (x * x).sum()
        loss.backward()
        assert np.allclose(x.grad, 2 * first)
