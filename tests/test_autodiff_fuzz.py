"""Fuzz tests: random op chains checked against finite differences.

Hypothesis drives random compositions of differentiable operations;
the analytic gradient of each composed program must match central
finite differences.  This is the strongest guarantee the autodiff
engine gets — every unary/binary op participates, in random orders.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.autodiff import (
    Tensor,
    check_gradients,
    concat,
    masked_softmax,
    padded_gather,
    softmax,
    stack,
    where,
)

# Unary ops safe on strictly positive inputs.
_UNARY = [
    lambda x: x.tanh(),
    lambda x: x.sigmoid(),
    lambda x: x.relu(),
    lambda x: x.leaky_relu(0.1),
    lambda x: x.tanh().exp(),      # bounded argument: no overflow when chained
    lambda x: (x * x + 0.5).log(),  # argument strictly positive
    lambda x: x.abs(),
    lambda x: x * 2.5 - 1.0,
    lambda x: (x * x) * 0.5,
    lambda x: x.reshape(-1).reshape(*x.shape),
]

_BINARY = [
    lambda a, b: a + b,
    lambda a, b: a - b,
    lambda a, b: a * b,
    lambda a, b: a / (b * b + 1.0),
    lambda a, b: concat([a, b], axis=0).sum(axis=0, keepdims=True)
    * Tensor(np.ones(a.shape)),
]


@st.composite
def op_programs(draw):
    """A random program: sequence of (kind, index) op picks."""
    length = draw(st.integers(1, 6))
    ops = []
    for _ in range(length):
        kind = draw(st.sampled_from(["unary", "binary"]))
        if kind == "unary":
            ops.append(("unary", draw(st.integers(0, len(_UNARY) - 1))))
        else:
            ops.append(("binary", draw(st.integers(0, len(_BINARY) - 1))))
    return ops


class TestFuzzGradients:
    @given(program=op_programs(), seed=st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_random_program_gradcheck(self, program, seed):
        rng = np.random.default_rng(seed)
        x = Tensor(rng.uniform(-0.9, 0.9, size=(2, 3)), requires_grad=True)
        y = Tensor(rng.uniform(-0.9, 0.9, size=(2, 3)), requires_grad=True)

        def fn():
            out = x
            for kind, index in program:
                if kind == "unary":
                    out = _UNARY[index](out)
                else:
                    out = _BINARY[index](out, y)
            # tanh keeps magnitudes sane; the y-term guarantees y always
            # participates even in all-unary programs.
            return (out.tanh()).sum() + (y * y).sum() * 0.01

        check_gradients(fn, [x, y], atol=5e-4, rtol=5e-3)

    @given(seed=st.integers(0, 10_000), n=st.integers(2, 6))
    @settings(max_examples=30, deadline=None)
    def test_softmax_weighted_sum_gradcheck(self, seed, n):
        rng = np.random.default_rng(seed)
        logits = Tensor(rng.normal(size=n), requires_grad=True)
        weights = rng.normal(size=n)

        def fn():
            return (softmax(logits) * Tensor(weights)).sum()

        check_gradients(fn, [logits])

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_where_stack_chain_gradcheck(self, seed):
        rng = np.random.default_rng(seed)
        a = Tensor(rng.normal(size=4), requires_grad=True)
        b = Tensor(rng.normal(size=4), requires_grad=True)
        condition = rng.random(4) > 0.5

        def fn():
            mixed = where(condition, a * 2.0, b + 1.0)
            return (stack([mixed, a + b], axis=0) ** 2).sum()

        check_gradients(fn, [a, b])

    @given(seed=st.integers(0, 10_000), rows=st.integers(1, 4),
           cols=st.integers(1, 6), force_empty_row=st.booleans())
    @settings(max_examples=40, deadline=None)
    def test_masked_softmax_gradcheck(self, seed, rows, cols,
                                      force_empty_row):
        """Analytic gradient matches finite differences; masked positions
        get exactly zero probability and exactly zero gradient.

        Degenerate shapes are in scope: length-1 rows (``cols == 1``)
        and guaranteed fully-masked rows (``force_empty_row``)."""
        rng = np.random.default_rng(seed)
        logits = Tensor(rng.normal(size=(rows, cols)), requires_grad=True)
        # Random mask; some rows may be entirely masked (padding rows).
        mask = rng.random((rows, cols)) > 0.4
        if force_empty_row:
            mask[int(rng.integers(rows))] = False
        weights = rng.normal(size=(rows, cols))

        def fn():
            return (masked_softmax(logits, mask, axis=-1)
                    * Tensor(weights)).sum()

        check_gradients(fn, [logits])

        probs = masked_softmax(logits, mask, axis=-1)
        assert np.isfinite(probs.data).all()
        assert (probs.data[~mask] == 0.0).all()
        full_rows = mask.any(axis=-1)
        np.testing.assert_allclose(probs.data.sum(axis=-1)[full_rows], 1.0)
        assert (probs.data[~full_rows] == 0.0).all()

        logits.grad = None
        fn().backward()
        assert (logits.grad[~mask] == 0.0).all()

    def test_masked_softmax_fully_masked_rows_zeros_not_nan(self):
        """The previously-missing gradcheck: rows whose mask is entirely
        False must produce exactly-zero probabilities AND exactly-zero,
        finite gradients — not NaN from a 0/0 normalisation."""
        rng = np.random.default_rng(7)
        logits = Tensor(rng.normal(size=(3, 5)), requires_grad=True)
        mask = np.ones((3, 5), dtype=bool)
        mask[1] = False                     # one fully-masked row
        weights = rng.normal(size=(3, 5))

        def fn():
            return (masked_softmax(logits, mask, axis=-1)
                    * Tensor(weights)).sum()

        check_gradients(fn, [logits])
        probs = masked_softmax(logits, mask, axis=-1)
        assert np.isfinite(probs.data).all()
        assert (probs.data[1] == 0.0).all()
        logits.grad = None
        fn().backward()
        assert np.isfinite(logits.grad).all()
        assert (logits.grad[1] == 0.0).all()

    def test_masked_softmax_all_rows_masked_gradcheck(self):
        """Every row masked: the output is identically zero and the
        gradient is exactly zero everywhere (present, finite, zero)."""
        rng = np.random.default_rng(11)
        logits = Tensor(rng.normal(size=(2, 4)), requires_grad=True)
        mask = np.zeros((2, 4), dtype=bool)

        def fn():
            return (masked_softmax(logits, mask, axis=-1) ** 2).sum()

        check_gradients(fn, [logits])
        assert (masked_softmax(logits, mask, axis=-1).data == 0.0).all()
        logits.grad = None
        fn().backward()
        assert (logits.grad == 0.0).all()

    def test_length_one_sequence_gradcheck(self):
        """A recurrent cell unrolled over a single step (length-1
        sequence) must gradcheck cleanly."""
        from repro.nn import LSTMCell
        rng = np.random.default_rng(3)
        cell = LSTMCell(3, 4, rng)
        sequence = Tensor(rng.normal(size=(2, 1, 3)), requires_grad=True)

        def fn():
            h, _ = cell(sequence[:, 0, :], cell.initial_state((2,)))
            return (h * h).sum()

        check_gradients(fn, [sequence, cell.weight_x, cell.bias])

    def test_single_node_graph_gradcheck(self):
        """GAT-e on a one-node graph — with and without a self-loop —
        must produce finite, finite-difference-matching gradients."""
        from repro.core.gat_e import GATEEncoder
        rng = np.random.default_rng(5)
        gat = GATEEncoder(dim=4, num_layers=1, num_heads=2, rng=rng)
        nodes = Tensor(rng.normal(size=(1, 4)), requires_grad=True)
        edges = Tensor(rng.normal(size=(1, 1, 4)), requires_grad=True)
        head = gat.layers[0].heads[0]
        for adjacency in (np.ones((1, 1), dtype=bool),
                          np.zeros((1, 1), dtype=bool)):
            def fn():
                out_nodes, out_edges = gat(nodes, edges, adjacency)
                return (out_nodes ** 2).sum() + (out_edges ** 2).sum() * 0.1

            check_gradients(fn, [nodes, edges, head.w1, head.a_src, head.w2])

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_masked_softmax_overflow_safe(self, seed):
        """Huge garbage in masked positions must not poison real rows."""
        rng = np.random.default_rng(seed)
        data = rng.normal(size=(2, 4))
        mask = np.array([[True, True, False, False],
                         [False, False, False, False]])
        garbage = 1e30 * np.sign(rng.normal(size=int((~mask).sum())))
        data[~mask] = garbage  # huge finite garbage in padding
        probs = masked_softmax(Tensor(data), mask, axis=-1)
        assert np.isfinite(probs.data).all()
        np.testing.assert_allclose(probs.data[0].sum(), 1.0)
        assert (probs.data[1] == 0.0).all()

    @given(seed=st.integers(0, 10_000), batch=st.integers(1, 4),
           n=st.integers(2, 5), k=st.integers(1, 6))
    @settings(max_examples=40, deadline=None)
    def test_padded_gather_gradcheck(self, seed, batch, n, k):
        """Gather gradient matches finite differences; invalid slots give
        exactly zero output and route exactly zero gradient back."""
        rng = np.random.default_rng(seed)
        values = Tensor(rng.normal(size=(batch, n, 3)), requires_grad=True)
        indices = rng.integers(0, n, size=(batch, k))
        valid = rng.random((batch, k)) > 0.3
        weights = rng.normal(size=(batch, k, 3))

        def fn():
            return (padded_gather(values, indices, valid=valid)
                    * Tensor(weights)).sum()

        check_gradients(fn, [values])

        gathered = padded_gather(values, indices, valid=valid)
        assert (gathered.data[~valid] == 0.0).all()

        # A row referenced only by invalid gathers gets exactly 0 grad.
        values.grad = None
        fn().backward()
        for b in range(batch):
            touched = set(indices[b, valid[b]].tolist())
            for row in set(range(n)) - touched:
                assert (values.grad[b, row] == 0.0).all()

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_padded_gather_unmasked_is_plain_index(self, seed):
        rng = np.random.default_rng(seed)
        values = Tensor(rng.normal(size=(3, 5, 2)), requires_grad=True)
        indices = rng.integers(0, 5, size=(3, 4))

        def fn():
            return (padded_gather(values, indices) ** 2).sum()

        check_gradients(fn, [values])
        expected = values.data[np.arange(3)[:, None], indices]
        np.testing.assert_array_equal(
            padded_gather(values, indices).data, expected)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_second_backward_accumulates(self, seed):
        """backward() twice doubles the gradient (accumulate semantics)."""
        rng = np.random.default_rng(seed)
        x = Tensor(rng.normal(size=3), requires_grad=True)
        loss = (x * x).sum()
        loss.backward()
        first = x.grad.copy()
        loss = (x * x).sum()
        loss.backward()
        assert np.allclose(x.grad, 2 * first)
