"""Parallel training subsystem: loader pipeline, seq-vs-parallel parity,
and elastic gradient aggregation under injected faults.

The parity suite is the core guarantee: a ``DataParallelTrainer`` with
``num_workers=2`` must reproduce the sequential ``Trainer``'s loss
trajectory and final parameters within floating-point-summation
tolerance on the same seed.  The fault cases drive the elastic paths —
straggler drop-and-rescale, transient-error shard loss and dead-worker
respawn — through :class:`repro.deploy.FaultPlan`.
"""

import numpy as np
import pytest

from repro.core import M2G4RTP, M2G4RTPConfig
from repro.deploy import FaultInjector, FaultPlan
from repro.graphs import GraphBuilder
from repro.obs import MetricsRegistry
from repro.parallel import (DataParallelTrainer, ParallelConfig,
                            ParallelDataLoader, train_parallel)
from repro.training import Trainer, TrainerConfig, train_m2g4rtp

TINY = dict(hidden_dim=16, num_heads=2, num_encoder_layers=1, seed=5)


def tiny_model():
    return M2G4RTP(M2G4RTPConfig(**TINY))


def metric_value(registry, name, **labels):
    instrument = registry.get(name)
    if instrument is None:
        return 0.0
    if labels:
        return instrument.labels(**labels).value
    return instrument.value


# ----------------------------------------------------------------------
class TestParallelDataLoader:
    def test_matches_sequential_map(self, splits):
        train, _, _ = splits
        builder = GraphBuilder(num_aoi_ids=256)
        reference = [builder.build(instance) for instance in train]
        with ParallelDataLoader(list(train), builder.build, batch_size=4,
                                num_workers=2) as loader:
            produced = loader.map()
        assert len(produced) == len(reference)
        for got, want in zip(produced, reference):
            assert np.array_equal(got.location.continuous,
                                  want.location.continuous)
            assert np.array_equal(got.aoi.adjacency, want.aoi.adjacency)

    def test_respects_order_and_is_reusable(self, splits):
        train, _, _ = splits
        items = list(range(20))
        with ParallelDataLoader(items, lambda x: x * x, batch_size=3,
                                num_workers=2) as loader:
            forward = [x for batch in loader.iter_batches() for x in batch]
            reverse = [x for batch
                       in loader.iter_batches(order=items[::-1])
                       for x in batch]
        assert forward == [x * x for x in items]
        assert reverse == [x * x for x in items[::-1]]

    def test_stochastic_transform_deterministic_across_pool_sizes(self):
        def jitter(value, rng):
            return value + rng.normal()

        results = {}
        for workers in (0, 1, 3):
            with ParallelDataLoader(list(range(12)), jitter, batch_size=4,
                                    num_workers=workers, seed=9) as loader:
                results[workers] = loader.map()
        assert np.allclose(results[0], results[1])
        assert np.allclose(results[0], results[3])

    def test_zero_workers_is_synchronous(self):
        loader = ParallelDataLoader(list(range(7)), lambda x: x + 1,
                                    batch_size=2, num_workers=0)
        assert [batch for batch in loader] == [[1, 2], [3, 4], [5, 6], [7]]
        assert len(loader) == 4

    def test_clean_shutdown_kills_workers(self):
        loader = ParallelDataLoader(list(range(8)), lambda x: x,
                                    batch_size=2, num_workers=2)
        processes = list(loader._processes)
        assert all(process.is_alive() for process in processes)
        loader.close()
        assert all(not process.is_alive() for process in processes)
        with pytest.raises(RuntimeError):
            list(loader.iter_batches())

    def test_transform_error_propagates(self):
        def boom(value):
            raise ValueError(f"bad item {value}")

        with ParallelDataLoader(list(range(4)), boom, batch_size=2,
                                num_workers=1) as loader:
            with pytest.raises(RuntimeError, match="bad item"):
                list(loader.iter_batches())

    def test_records_metrics(self):
        registry = MetricsRegistry()
        with ParallelDataLoader(list(range(8)), lambda x: x, batch_size=2,
                                num_workers=2, registry=registry) as loader:
            loader.map()
        assert metric_value(registry, "rtp_train_loader_batches_total") == 4


# ----------------------------------------------------------------------
class TestParity:
    def test_two_workers_match_sequential(self, splits):
        train, val, _ = splits
        config = TrainerConfig(epochs=3, batch_size=4, patience=10)
        sequential = tiny_model()
        seq_history = Trainer(sequential, config).fit(train, val)
        parallel = tiny_model()
        par_history = DataParallelTrainer(
            parallel, config, ParallelConfig(num_workers=2)).fit(train, val)

        assert np.allclose(seq_history.train_loss, par_history.train_loss,
                           rtol=1e-8, atol=1e-8)
        assert np.allclose(seq_history.val_loss, par_history.val_loss,
                           rtol=1e-8, atol=1e-8)
        seq_state = sequential.state_dict()
        par_state = parallel.state_dict()
        for name in seq_state:
            assert np.allclose(seq_state[name], par_state[name],
                               rtol=1e-7, atol=1e-9), name

    def test_gradient_accumulation_matches_sequential(self, splits):
        train, _, _ = splits
        config = TrainerConfig(epochs=2, batch_size=4, patience=10)
        sequential = tiny_model()
        seq_history = Trainer(sequential, config).fit(train[:8])
        parallel = tiny_model()
        par_history = DataParallelTrainer(
            parallel, config,
            ParallelConfig(num_workers=2, accumulate_steps=2)).fit(train[:8])
        assert np.allclose(seq_history.train_loss, par_history.train_loss,
                           rtol=1e-8, atol=1e-8)

    def test_train_m2g4rtp_opt_in(self, splits):
        train, _, _ = splits
        config = TrainerConfig(epochs=1, batch_size=4, patience=10)
        _, seq_history = train_m2g4rtp(train[:8], model=tiny_model(),
                                       trainer_config=config)
        _, par_history = train_m2g4rtp(train[:8], model=tiny_model(),
                                       trainer_config=config, num_workers=2)
        assert np.allclose(seq_history.train_loss, par_history.train_loss,
                           rtol=1e-8, atol=1e-8)

    def test_two_step_ablation_rejected(self):
        model = M2G4RTP(M2G4RTPConfig(detach_time_inputs=True, **{
            k: v for k, v in TINY.items()}))
        with pytest.raises(ValueError, match="two-step"):
            DataParallelTrainer(model)

    def test_zero_workers_is_sequential_path(self, splits):
        train, _, _ = splits
        config = TrainerConfig(epochs=1, batch_size=4, patience=10)
        trainer = DataParallelTrainer(tiny_model(), config,
                                      ParallelConfig(num_workers=0))
        history = trainer.fit(train[:8])
        assert trainer._pool is None
        assert len(history.train_loss) == 1


# ----------------------------------------------------------------------
class TestElasticAggregation:
    def test_straggler_dropped_and_rescaled(self, splits):
        train, _, _ = splits
        registry = MetricsRegistry()
        config = ParallelConfig(
            num_workers=2, deadline_s=0.35,
            fault_plans={1: FaultPlan(spike_rate=1.0,
                                      latency_spike_ms=5000)})
        trainer = DataParallelTrainer(
            tiny_model(), TrainerConfig(epochs=1, batch_size=4, patience=10),
            config, registry=registry)
        history = trainer.fit(train[:8])
        assert metric_value(registry, "rtp_train_worker_stragglers_total",
                            worker="1") >= 1
        # Training still made progress on worker 0's rescaled shards.
        assert np.isfinite(history.train_loss[0])
        assert metric_value(registry, "rtp_train_worker_steps_total",
                            worker="0") >= 2

    def test_transient_error_loses_shard_not_run(self, splits):
        train, _, _ = splits
        registry = MetricsRegistry()
        config = ParallelConfig(
            num_workers=2,
            fault_plans={1: FaultPlan(fail_first=2)})
        history = DataParallelTrainer(
            tiny_model(), TrainerConfig(epochs=1, batch_size=4, patience=10),
            config, registry=registry).fit(train[:8])
        assert metric_value(registry, "rtp_train_worker_errors_total",
                            worker="1") == 2
        assert np.isfinite(history.train_loss[0])

    def test_dead_worker_respawned_and_step_preserved(self, splits):
        """A crash before any gradient ships must not change the math:
        the respawned worker gets the task resubmitted, so the loss
        trajectory still matches the sequential trainer exactly."""
        train, _, _ = splits
        config = TrainerConfig(epochs=2, batch_size=4, patience=10)
        seq_history = Trainer(tiny_model(), config).fit(train[:8])
        registry = MetricsRegistry()
        parallel_config = ParallelConfig(
            num_workers=2,
            fault_plans={0: FaultPlan(crash_first=1)})
        par_history = DataParallelTrainer(
            tiny_model(), config, parallel_config,
            registry=registry).fit(train[:8])
        assert metric_value(registry, "rtp_train_worker_respawns_total",
                            worker="0") == 1
        assert np.allclose(seq_history.train_loss, par_history.train_loss,
                           rtol=1e-8, atol=1e-8)

    def test_respawn_budget_enforced(self, splits):
        train, _, _ = splits
        config = ParallelConfig(
            num_workers=2, max_respawns=1,
            fault_plans={0: FaultPlan(crash_rate=1.0)})
        trainer = DataParallelTrainer(
            tiny_model(), TrainerConfig(epochs=2, batch_size=4, patience=10),
            config)
        with pytest.raises(RuntimeError, match="respawn budget"):
            trainer.fit(train[:8])

    def test_fault_injector_crash_stream_replays(self):
        injector = FaultInjector(FaultPlan(crash_rate=0.5), seed=3)
        decisions = [injector.should_crash() for _ in range(16)]
        injector.reset()
        assert [injector.should_crash() for _ in range(16)] == decisions
        # fast_forward resumes mid-stream rather than replaying.
        injector.reset()
        injector.fast_forward(4)
        assert [injector.should_crash() for _ in range(12)] == decisions[4:]

    def test_crash_stream_does_not_perturb_error_stream(self):
        plain = FaultInjector(FaultPlan(error_rate=0.3), seed=11)
        crashy = FaultInjector(FaultPlan(error_rate=0.3, crash_rate=0.5),
                               seed=11)

        def errors(injector, draw_crashes):
            outcomes = []
            for _ in range(20):
                if draw_crashes:
                    injector.should_crash()
                try:
                    injector.before_call()
                    outcomes.append(False)
                except Exception:
                    outcomes.append(True)
            return outcomes

        assert errors(plain, False) == errors(crashy, True)


# ----------------------------------------------------------------------
class TestParallelGraphBuild:
    def test_loader_workers_build_identical_graphs(self, splits):
        train, _, _ = splits
        config = TrainerConfig(epochs=1, batch_size=4, patience=10)
        inline = DataParallelTrainer(tiny_model(), config,
                                     ParallelConfig(num_workers=2))
        loaded = DataParallelTrainer(
            tiny_model(), config,
            ParallelConfig(num_workers=2, loader_workers=2, prefetch=2))
        inline_history = inline.fit(train[:8])
        loaded_history = loaded.fit(train[:8])
        assert np.allclose(inline_history.train_loss,
                           loaded_history.train_loss, rtol=1e-8, atol=1e-8)


@pytest.mark.slow
class TestScaling:
    def test_four_worker_scaling(self, dataset):
        """4-worker run over a larger workload: parity with sequential
        plus every worker contributing.  Wall-clock speedup is recorded
        by ``benchmarks/bench_parallel_training.py`` (it depends on the
        machine's core count, so it is not asserted here)."""
        train = dataset.filter_paper_scope()[:32]
        config = TrainerConfig(epochs=2, batch_size=8, patience=10)
        seq_history = Trainer(tiny_model(), config).fit(train)
        registry = MetricsRegistry()
        par_history = DataParallelTrainer(
            tiny_model(), config, ParallelConfig(num_workers=4),
            registry=registry).fit(train)
        assert np.allclose(seq_history.train_loss, par_history.train_loss,
                           rtol=1e-8, atol=1e-8)
        for worker in range(4):
            assert metric_value(registry, "rtp_train_worker_steps_total",
                                worker=str(worker)) >= 1
        _, convenience_history = train_parallel(
            train[:8], trainer_config=TrainerConfig(
                epochs=1, batch_size=8, patience=10),
            model=tiny_model(),
            parallel=ParallelConfig(num_workers=4))
        assert len(convenience_history.train_loss) == 1
