"""Tests for k-NN connectivity and the multi-level graph builder."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data import pairwise_distance_matrix
from repro.graphs import (
    EDGE_FEATURES,
    GraphBuilder,
    LOCATION_NODE_FEATURES,
    build_graphs,
    connectivity_matrix,
    knn_adjacency,
)


class TestKnnAdjacency:
    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            knn_adjacency(np.zeros((2, 3)), 1)

    def test_rejects_negative_k(self):
        with pytest.raises(ValueError):
            knn_adjacency(np.zeros((3, 3)), -1)

    def test_single_node(self):
        assert not knn_adjacency(np.zeros((1, 1)), 3).any()

    def test_k_zero_empty(self):
        assert not knn_adjacency(np.ones((4, 4)), 0).any()

    def test_line_graph_neighbors(self):
        # Points on a line at 0, 1, 2, 10: with k=1 the pairs (0,1),(1,2)
        # connect, and 10 connects to 2 (its nearest).
        positions = np.array([0.0, 1.0, 2.0, 10.0])
        cost = np.abs(positions[:, None] - positions[None, :])
        adjacency = knn_adjacency(cost, 1)
        assert adjacency[0, 1] and adjacency[1, 0]
        assert adjacency[3, 2] and adjacency[2, 3]  # symmetrised
        assert not adjacency[0, 3]

    def test_symmetric(self, rng):
        cost = rng.random((8, 8))
        cost = (cost + cost.T) / 2
        adjacency = knn_adjacency(cost, 2)
        assert np.array_equal(adjacency, adjacency.T)

    def test_k_larger_than_n_connects_everything(self, rng):
        cost = rng.random((5, 5))
        cost = (cost + cost.T) / 2
        adjacency = knn_adjacency(cost, 10)
        off_diagonal = adjacency | np.eye(5, dtype=bool)
        assert off_diagonal.all()

    @given(st.integers(2, 12), st.integers(1, 4))
    @settings(max_examples=30, deadline=None)
    def test_each_row_has_at_least_k_neighbors(self, n, k):
        rng = np.random.default_rng(n * 13 + k)
        coords = rng.random((n, 2))
        cost = np.linalg.norm(coords[:, None] - coords[None, :], axis=-1)
        adjacency = knn_adjacency(cost, k)
        effective = min(k, n - 1)
        assert np.all(adjacency.sum(axis=1) >= effective)


class TestConnectivity:
    def test_self_loops_present(self, rng):
        distance = rng.random((6, 6))
        distance = (distance + distance.T) / 2
        gap = rng.random((6, 6))
        connectivity = connectivity_matrix(distance, gap, 2)
        assert np.all(np.diag(connectivity))

    def test_union_of_spatial_and_temporal(self):
        # Two clusters far apart spatially but adjacent temporally.
        distance = np.array([[0.0, 1.0, 100.0],
                             [1.0, 0.0, 100.0],
                             [100.0, 100.0, 0.0]])
        gap = np.array([[0.0, 50.0, 1.0],
                        [50.0, 0.0, 50.0],
                        [1.0, 50.0, 0.0]])
        connectivity = connectivity_matrix(distance, gap, 1)
        assert connectivity[0, 1]  # spatial neighbour
        assert connectivity[0, 2]  # temporal neighbour


class TestGraphBuilder:
    def test_invalid_k(self):
        with pytest.raises(ValueError):
            GraphBuilder(k_neighbors=0)

    def test_shapes(self, graph, instance):
        n, m = instance.num_locations, instance.num_aois
        assert graph.location.continuous.shape == (n, len(LOCATION_NODE_FEATURES))
        assert graph.location.discrete.shape == (n, 2)
        assert graph.location.edge_features.shape == (n, n, len(EDGE_FEATURES))
        assert graph.location.adjacency.shape == (n, n)
        assert graph.aoi.continuous.shape[0] == m
        assert graph.aoi_of_location.shape == (n,)
        assert graph.courier_profile.shape == (3,)
        assert graph.global_discrete.shape == (2,)

    def test_distance_feature_consistent(self, graph, instance):
        coords = instance.location_coords()
        expected = pairwise_distance_matrix(coords) / 1000.0
        assert np.allclose(graph.location.distance_km, expected)
        assert np.allclose(graph.location.edge_features[..., 0], expected)

    def test_connectivity_feature_matches_adjacency(self, graph):
        assert np.array_equal(
            graph.location.edge_features[..., 2].astype(bool),
            graph.location.adjacency)

    def test_slack_feature_positive_before_deadline(self, graph, instance):
        slack_hours = graph.location.continuous[:, 5]
        for location, slack in zip(instance.locations, slack_hours):
            assert np.isclose(slack, (location.deadline - instance.request_time) / 60.0)

    def test_aoi_member_count(self, graph, instance):
        counts = graph.aoi.continuous[:, 5]
        assert counts.sum() == instance.num_locations

    def test_discrete_features_in_vocab(self, graph, builder):
        assert np.all(graph.location.discrete[:, 0] < builder.num_aoi_ids)
        assert np.all(graph.location.discrete[:, 1] < builder.num_aoi_types)

    def test_courier_id_threaded(self, graph, instance):
        assert graph.courier_id == instance.courier.courier_id

    def test_build_graphs_bulk(self, dataset, builder):
        graphs = build_graphs(list(dataset)[:4], builder)
        assert set(graphs) == {0, 1, 2, 3}

    def test_features_are_order1(self, dataset, builder):
        """Scaling convention: every continuous feature is O(1)-ish."""
        for instance in list(dataset)[:10]:
            graph = builder.build(instance)
            assert np.all(np.abs(graph.location.continuous) < 50)
            assert np.all(np.abs(graph.aoi.continuous) < 50)
