"""Tests for uncertainty weighting, the encoder and the full M2G4RTP model."""

import numpy as np
import pytest

from repro.autodiff import Adam, Tensor, no_grad
from repro.core import (
    FixedWeighting,
    M2G4RTP,
    M2G4RTPConfig,
    MultiLevelEncoder,
    RTPTargets,
    TASKS,
    UncertaintyWeighting,
    VARIANT_NAMES,
    make_variant,
)


class TestUncertaintyWeighting:
    def test_formula_at_unit_sigma(self):
        weighting = UncertaintyWeighting()
        losses = {task: Tensor(np.array(2.0), requires_grad=True)
                  for task in TASKS}
        total = weighting(losses)
        # sigma=1: 0.5*2 + 0.5*2 + 1*2 + 1*2 + 4*log(1) = 6.
        assert np.isclose(total.item(), 6.0)

    def test_log_sigma_receives_gradient(self):
        weighting = UncertaintyWeighting()
        losses = {"aoi_route": Tensor(np.array(4.0), requires_grad=True),
                  "location_time": Tensor(np.array(3.0), requires_grad=True)}
        weighting(losses).backward()
        grad = weighting.log_sigma.grad
        assert grad is not None
        # Gradient exists for the used tasks, zero for the unused ones.
        assert grad[0] != 0 and grad[3] != 0
        assert grad[1] == 0 and grad[2] == 0

    def test_large_loss_pushes_sigma_up(self):
        weighting = UncertaintyWeighting()
        optimizer = Adam([weighting.log_sigma], lr=0.05)
        for _ in range(50):
            optimizer.zero_grad()
            losses = {"location_time": Tensor(np.array(100.0))}
            weighting(losses).backward()
            optimizer.step()
        assert weighting.sigmas()["location_time"] > 1.5

    def test_unknown_task_rejected(self):
        with pytest.raises(KeyError):
            UncertaintyWeighting()({"bogus": Tensor(np.array(1.0))})

    def test_empty_losses_rejected(self):
        with pytest.raises(ValueError):
            UncertaintyWeighting()({})

    def test_fixed_weighting_ratio(self):
        weighting = FixedWeighting(route_weight=100.0, time_weight=1.0)
        total = weighting({
            "location_route": Tensor(np.array(1.0)),
            "location_time": Tensor(np.array(1.0)),
        })
        assert np.isclose(total.item(), 101.0)


class TestMultiLevelEncoder:
    def test_output_shapes(self, graph, instance, rng):
        encoder = MultiLevelEncoder(rng=rng)
        locations, aois = encoder(graph)
        assert locations.shape == (instance.num_locations,
                                   encoder.config.hidden_dim)
        assert aois.shape == (instance.num_aois, encoder.config.hidden_dim)

    def test_sequence_variant_shapes(self, graph, instance, rng):
        encoder = MultiLevelEncoder(rng=rng, use_graph=False)
        locations, aois = encoder(graph)
        assert locations.shape == (instance.num_locations,
                                   encoder.config.hidden_dim)
        assert aois.shape[0] == instance.num_aois


class TestM2G4RTPModel:
    @pytest.fixture(scope="class")
    def model(self):
        return M2G4RTP(M2G4RTPConfig(hidden_dim=16, num_heads=2,
                                     num_encoder_layers=1))

    def test_forward_inference_shapes(self, model, graph, instance):
        output = model.predict(graph)
        assert sorted(output.route.tolist()) == list(range(instance.num_locations))
        assert output.arrival_times.shape == (instance.num_locations,)
        assert sorted(output.aoi_route.tolist()) == list(range(instance.num_aois))
        assert output.aoi_arrival_times.shape == (instance.num_aois,)
        assert output.losses == {}
        assert output.total_loss is None

    def test_forward_training_losses(self, model, graph, instance):
        targets = RTPTargets.from_instance(instance)
        output = model(graph, targets)
        assert set(output.losses) == set(TASKS)
        assert output.total_loss is not None
        assert all(np.isfinite(loss.data) for loss in output.losses.values())

    def test_loss_decreases_with_training(self, graph, instance):
        model = M2G4RTP(M2G4RTPConfig(hidden_dim=16, num_heads=2,
                                      num_encoder_layers=1, seed=3))
        targets = RTPTargets.from_instance(instance)
        optimizer = Adam(model.parameters(), lr=5e-3)
        first = None
        for step in range(30):
            optimizer.zero_grad()
            output = model(graph, targets)
            output.total_loss.backward()
            optimizer.step()
            if first is None:
                first = float(output.total_loss.data)
        final = float(output.total_loss.data)
        assert final < first

    def test_predict_restores_training_mode(self, model, graph):
        model.train()
        model.predict(graph)
        assert model.training

    def test_parameter_groups_disjoint_and_complete(self, model):
        route_ids = {id(p) for p in model.route_parameters()}
        time_ids = {id(p) for p in model.time_parameters()}
        assert not route_ids & time_ids
        assert len(route_ids) + len(time_ids) == len(model.parameters())

    def test_state_dict_roundtrip(self, model, graph):
        clone = M2G4RTP(M2G4RTPConfig(hidden_dim=16, num_heads=2,
                                      num_encoder_layers=1, seed=99))
        clone.load_state_dict(model.state_dict())
        a = model.predict(graph)
        b = clone.predict(graph)
        assert np.array_equal(a.route, b.route)
        assert np.allclose(a.arrival_times, b.arrival_times)


class TestVariants:
    def test_variant_names(self):
        for name in VARIANT_NAMES:
            make_variant(name)

    def test_unknown_variant(self):
        with pytest.raises(ValueError):
            make_variant("bogus")

    def test_wo_aoi_has_no_aoi_decoders(self, graph, instance):
        model = M2G4RTP(make_variant("w/o aoi", M2G4RTPConfig(
            hidden_dim=16, num_heads=2, num_encoder_layers=1)))
        assert model.aoi_route_decoder is None
        output = model(graph, RTPTargets.from_instance(instance))
        assert output.aoi_route is None
        assert set(output.losses) == {"location_route", "location_time"}

    def test_wo_graph_uses_sequence_encoder(self):
        from repro.core.encoder import SequenceEncoder
        model = M2G4RTP(make_variant("w/o graph", M2G4RTPConfig(
            hidden_dim=16, num_heads=2, num_encoder_layers=1)))
        assert isinstance(model.encoder.location_encoder, SequenceEncoder)

    def test_wo_uncertainty_uses_fixed_weights(self):
        model = M2G4RTP(make_variant("w/o uncertainty", M2G4RTPConfig(
            hidden_dim=16, num_heads=2, num_encoder_layers=1)))
        assert isinstance(model.loss_weighting, FixedWeighting)

    def test_two_step_detaches_time_inputs(self, graph, instance):
        model = M2G4RTP(make_variant("two-step", M2G4RTPConfig(
            hidden_dim=16, num_heads=2, num_encoder_layers=1)))
        targets = RTPTargets.from_instance(instance)
        output = model(graph, targets)
        time_loss = output.losses["location_time"] + output.losses["aoi_time"]
        time_loss.backward()
        encoder_params = model.encoder.parameters()
        # Time loss must not reach the encoder when detached.
        assert all(p.grad is None or np.allclose(p.grad, 0)
                   for p in encoder_params)

    def test_variants_run_forward(self, graph, instance):
        targets = RTPTargets.from_instance(instance)
        for name in VARIANT_NAMES:
            model = M2G4RTP(make_variant(name, M2G4RTPConfig(
                hidden_dim=16, num_heads=2, num_encoder_layers=1)))
            output = model(graph, targets)
            assert output.total_loss is not None
            prediction = model.predict(graph)
            assert sorted(prediction.route.tolist()) == list(
                range(instance.num_locations))
