"""Tests for LSTMCell, LSTM and BiLSTM."""

import numpy as np
import pytest

from repro.autodiff import Tensor, check_gradients
from repro.nn import BiLSTM, LSTM, LSTMCell


class TestLSTMCell:
    def test_shapes_unbatched(self, rng):
        cell = LSTMCell(4, 6, rng)
        h, c = cell(Tensor(np.zeros(4)))
        assert h.shape == (6,) and c.shape == (6,)

    def test_shapes_batched(self, rng):
        cell = LSTMCell(4, 6, rng)
        h, c = cell(Tensor(np.zeros((3, 4))))
        assert h.shape == (3, 6) and c.shape == (3, 6)

    def test_state_threading_changes_output(self, rng):
        cell = LSTMCell(4, 6, rng)
        x = Tensor(rng.normal(size=4))
        h1, c1 = cell(x)
        h2, _ = cell(x, (h1, c1))
        assert not np.allclose(h1.data, h2.data)

    def test_initial_state_zero(self, rng):
        cell = LSTMCell(4, 6, rng)
        h, c = cell.initial_state()
        assert np.allclose(h.data, 0.0) and np.allclose(c.data, 0.0)

    def test_forget_bias_initialized_to_one(self, rng):
        cell = LSTMCell(4, 6, rng)
        assert np.allclose(cell.bias.data[6:12], 1.0)
        assert np.allclose(cell.bias.data[:6], 0.0)

    def test_hidden_bounded_by_tanh(self, rng):
        cell = LSTMCell(4, 6, rng)
        h, _ = cell(Tensor(rng.normal(size=4) * 100))
        assert np.all(np.abs(h.data) <= 1.0)

    def test_gradcheck(self, rng):
        cell = LSTMCell(3, 2, rng)
        x = Tensor(rng.normal(size=3), requires_grad=True)

        def fn():
            h, c = cell(x)
            h2, _ = cell(x, (h, c))
            return (h2 ** 2).sum()

        check_gradients(fn, [x, cell.weight_x, cell.weight_h, cell.bias])


class TestLSTM:
    def test_output_shapes(self, rng):
        lstm = LSTM(4, 6, rng)
        states, (h, c) = lstm(Tensor(np.zeros((5, 4))))
        assert states.shape == (5, 6)
        assert h.shape == (6,)

    def test_last_state_matches_last_output(self, rng):
        lstm = LSTM(4, 6, rng)
        states, (h, _) = lstm(Tensor(rng.normal(size=(5, 4))))
        assert np.allclose(states.data[-1], h.data)

    def test_sequence_order_matters(self, rng):
        lstm = LSTM(4, 6, rng)
        x = rng.normal(size=(5, 4))
        out_fwd, _ = lstm(Tensor(x))
        out_rev, _ = lstm(Tensor(x[::-1].copy()))
        assert not np.allclose(out_fwd.data[-1], out_rev.data[-1])


class TestBiLSTM:
    def test_output_dim_doubled(self, rng):
        bilstm = BiLSTM(4, 6, rng)
        assert bilstm.output_dim == 12
        out = bilstm(Tensor(np.zeros((5, 4))))
        assert out.shape == (5, 12)

    def test_every_position_sees_whole_sequence(self, rng):
        # Perturbing the last element must change the first output
        # (through the backward pass).
        bilstm = BiLSTM(3, 4, rng)
        x = rng.normal(size=(5, 3))
        base = bilstm(Tensor(x)).data.copy()
        x2 = x.copy()
        x2[-1] += 1.0
        shifted = bilstm(Tensor(x2)).data
        assert not np.allclose(base[0], shifted[0])

    def test_gradients_flow(self, rng):
        bilstm = BiLSTM(3, 4, rng)
        x = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        (bilstm(x) ** 2).sum().backward()
        assert x.grad is not None and np.any(x.grad != 0)
