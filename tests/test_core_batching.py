"""Batched-vs-sequential parity suite for the batched inference engine.

The contract under test (see ``repro.core.batching``): for any list of
graphs and any model variant, ``BatchedM2G4RTP.predict(graphs)`` must
equal ``[model.predict(g) for g in graphs]`` — routes exactly, arrival
times within 1e-6 — and padding positions must receive exactly zero
attention probability.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.autodiff import Tensor, no_grad
from repro.core import (
    BatchedM2G4RTP,
    GraphBatch,
    LevelBatch,
    M2G4RTP,
    M2G4RTPConfig,
    make_variant,
)

VARIANTS = ["full", "two-step", "w/o aoi", "w/o graph", "w/o uncertainty"]


def small_config(**overrides) -> M2G4RTPConfig:
    base = dict(hidden_dim=16, num_heads=2, num_encoder_layers=1,
                continuous_embed_dim=8, discrete_embed_dim=4,
                position_dim=4, courier_embed_dim=4, seed=5)
    base.update(overrides)
    return M2G4RTPConfig(**base)


@pytest.fixture(scope="module")
def graph_pool(dataset, builder):
    """Graphs of heterogeneous size (locations and AOIs) to batch from."""
    graphs = [builder.build(instance) for instance in list(dataset)[:24]]
    sizes = {(g.num_locations, g.num_aois) for g in graphs}
    assert len(sizes) > 1, "pool must mix instance sizes"
    return graphs


@pytest.fixture(scope="module")
def models():
    """One small model per (variant, cell_type) combination, built lazily."""
    cache = {}

    def get(variant: str, cell_type: str = "lstm",
            restrict_to_neighbors: bool = False) -> M2G4RTP:
        key = (variant, cell_type, restrict_to_neighbors)
        if key not in cache:
            config = make_variant(variant, small_config(
                cell_type=cell_type,
                restrict_to_neighbors=restrict_to_neighbors))
            cache[key] = M2G4RTP(config)
        return cache[key]

    return get


def assert_parity(model: M2G4RTP, graphs) -> None:
    batched = BatchedM2G4RTP(model).predict(graphs)
    assert len(batched) == len(graphs)
    for graph, out in zip(graphs, batched):
        reference = model.predict(graph)
        np.testing.assert_array_equal(out.route, reference.route)
        np.testing.assert_allclose(out.arrival_times,
                                   reference.arrival_times, atol=1e-6)
        if reference.aoi_route is None:
            assert out.aoi_route is None
            assert out.aoi_arrival_times is None
        else:
            np.testing.assert_array_equal(out.aoi_route, reference.aoi_route)
            np.testing.assert_allclose(out.aoi_arrival_times,
                                       reference.aoi_arrival_times, atol=1e-6)


# ----------------------------------------------------------------------
# Padding / batch-assembly invariants
# ----------------------------------------------------------------------
class TestBatchAssembly:
    def test_level_batch_padding(self, graph_pool):
        levels = [g.location for g in graph_pool[:5]]
        batch = LevelBatch.from_levels(levels)
        n = batch.max_nodes
        assert n == max(level.num_nodes for level in levels)
        for b, level in enumerate(levels):
            k = level.num_nodes
            assert batch.lengths[b] == k
            assert batch.mask[b, :k].all() and not batch.mask[b, k:].any()
            np.testing.assert_array_equal(batch.continuous[b, :k],
                                          level.continuous)
            # Padding is exactly zero everywhere.
            assert not batch.continuous[b, k:].any()
            assert not batch.discrete[b, k:].any()
            # Adjacency never points into or out of padding.
            assert not batch.adjacency[b, k:, :].any()
            assert not batch.adjacency[b, :, k:].any()

    def test_graph_batch_rejects_empty(self):
        with pytest.raises(ValueError):
            GraphBatch.from_graphs([])

    def test_engine_empty_list(self, models):
        assert BatchedM2G4RTP(models("full")).predict([]) == []

    def test_engine_restores_training_mode(self, models, graph_pool):
        model = models("full")
        model.train()
        try:
            BatchedM2G4RTP(model).predict(graph_pool[:2])
            assert model.training
        finally:
            model.eval()

    def test_padding_gets_zero_attention(self, models, graph_pool):
        """GAT-e attention over a padded batch puts exactly 0 on padding."""
        model = models("full")
        batch = GraphBatch.from_graphs(graph_pool[:6])
        level = batch.location
        head = model.encoder.location_encoder.gat.layers[0].heads[0]
        rng = np.random.default_rng(9)
        shape = level.adjacency.shape  # (B, n, n)
        # Garbage (non-zero) values in padding positions on purpose: the
        # mask alone must prevent them from getting probability.
        nodes = Tensor(rng.normal(size=(shape[0], shape[1], 16)))
        edges = Tensor(rng.normal(size=shape + (16,)))
        with no_grad():
            alpha = head.attention_batch(nodes, edges, level.adjacency)
        for b in range(len(batch)):
            k = int(level.lengths[b])
            # Padding columns: probability exactly zero for every row.
            assert not alpha.data[b, :, k:].any()
            # Padding rows are entirely zero (masked_softmax, not NaN).
            assert not alpha.data[b, k:, :].any()
            assert np.isfinite(alpha.data[b]).all()
            # Real rows with neighbours still normalise to 1.
            has_neighbors = level.adjacency[b, :k].any(axis=1)
            np.testing.assert_allclose(
                alpha.data[b, :k][has_neighbors].sum(axis=1), 1.0)


# ----------------------------------------------------------------------
# Parity: every variant, both cells, deterministic mixed batch
# ----------------------------------------------------------------------
class TestVariantParity:
    @pytest.mark.parametrize("variant", VARIANTS)
    @pytest.mark.parametrize("cell_type", ["lstm", "gru"])
    def test_variant_parity(self, models, graph_pool, variant, cell_type):
        assert_parity(models(variant, cell_type), graph_pool[:6])

    def test_restrict_to_neighbors_parity(self, models, graph_pool):
        assert_parity(models("full", restrict_to_neighbors=True),
                      graph_pool[:6])

    def test_single_graph_batch(self, models, graph_pool):
        assert_parity(models("full"), graph_pool[:1])

    def test_duplicate_graphs_agree(self, models, graph_pool):
        """The same graph twice in one batch decodes identically."""
        model = models("full")
        graph = graph_pool[0]
        first, second = BatchedM2G4RTP(model).predict([graph, graph])
        np.testing.assert_array_equal(first.route, second.route)
        np.testing.assert_array_equal(first.arrival_times,
                                      second.arrival_times)


# ----------------------------------------------------------------------
# Fast path (grad disabled) vs Tensor path (grad enabled)
# ----------------------------------------------------------------------
class TestFastPathParity:
    @pytest.mark.parametrize("cell_type", ["lstm", "gru"])
    def test_decoder_fast_path_matches_tensor_path(self, models, graph_pool,
                                                   cell_type):
        """forward_batch must give bit-identical results whether it runs
        the raw-numpy inference fast path (grad off) or Tensor ops."""
        from repro.autodiff import concat, no_grad

        model = models("full", cell_type)
        model.eval()
        batch = GraphBatch.from_graphs(graph_pool[:5])
        courier = concat(
            [model.courier_embedding(
                batch.courier_ids % model.config.num_couriers),
             Tensor(batch.courier_profiles)], axis=-1)
        _, aoi_reps = model.encoder.forward_batch(batch)
        routes_tensor = model.aoi_route_decoder.forward_batch(
            aoi_reps, courier, batch.aoi.lengths,
            adjacency=batch.aoi.adjacency)
        times_tensor = model.aoi_time_decoder.forward_batch(
            aoi_reps, routes_tensor, batch.aoi.lengths)
        with no_grad():
            routes_fast = model.aoi_route_decoder.forward_batch(
                aoi_reps, courier, batch.aoi.lengths,
                adjacency=batch.aoi.adjacency)
            times_fast = model.aoi_time_decoder.forward_batch(
                aoi_reps, routes_fast, batch.aoi.lengths)
        np.testing.assert_array_equal(routes_tensor, routes_fast)
        np.testing.assert_array_equal(times_tensor.data, times_fast.data)


# ----------------------------------------------------------------------
# Parity: property-based over random heterogeneous batches
# ----------------------------------------------------------------------
class TestRandomBatchParity:
    @given(indices=st.lists(st.integers(0, 23), min_size=1, max_size=8),
           variant=st.sampled_from(VARIANTS))
    @settings(max_examples=20, deadline=None)
    def test_random_batches(self, models, graph_pool, indices, variant):
        graphs = [graph_pool[i] for i in indices]
        assert_parity(models(variant), graphs)

    @given(indices=st.lists(st.integers(0, 23), min_size=1, max_size=8),
           cell_type=st.sampled_from(["lstm", "gru"]),
           restrict=st.booleans())
    @settings(max_examples=10, deadline=None)
    def test_random_batches_decoder_options(self, models, graph_pool,
                                            indices, cell_type, restrict):
        graphs = [graph_pool[i] for i in indices]
        assert_parity(models("full", cell_type, restrict), graphs)

    @pytest.mark.slow
    @given(indices=st.lists(st.integers(0, 23), min_size=1, max_size=8),
           variant=st.sampled_from(VARIANTS),
           cell_type=st.sampled_from(["lstm", "gru"]),
           restrict=st.booleans())
    @settings(max_examples=120, deadline=None)
    def test_extended_sweep(self, models, graph_pool, indices, variant,
                            cell_type, restrict):
        graphs = [graph_pool[i] for i in indices]
        assert_parity(models(variant, cell_type, restrict), graphs)
