"""Tests for the error-analysis module."""

import numpy as np
import pytest

from repro.baselines import DistanceGreedy
from repro.eval import (
    baseline_predictor,
    breakdown_by,
    calibration_report,
    format_breakdown,
    position_error_curve,
)


@pytest.fixture(scope="module")
def predictor(splits):
    train, _, _ = splits
    return baseline_predictor(DistanceGreedy().fit(train))


class TestPositionErrorCurve:
    def test_positions_covered(self, predictor, splits):
        _, _, test = splits
        curve = position_error_curve(predictor, list(test))
        assert curve.positions[0] == 1
        assert np.all(curve.mae >= 0)
        assert np.all(curve.counts > 0)
        # Every instance contributes a position-1 location.
        assert curve.counts[0] == len(test)

    def test_perfect_predictor_zero_curve(self, splits):
        _, _, test = splits

        def oracle(instance):
            return instance.route, instance.arrival_times

        curve = position_error_curve(oracle, list(test))
        assert np.allclose(curve.mae, 0.0)

    def test_render(self, predictor, splits):
        _, _, test = splits
        curve = position_error_curve(predictor, list(test))
        text = curve.render()
        assert "MAE(min)" in text
        assert len(text.splitlines()) == curve.positions.size + 1


class TestCalibration:
    def test_oracle_slope_one(self, splits):
        _, _, test = splits

        def oracle(instance):
            return instance.route, instance.arrival_times

        report = calibration_report(oracle, list(test))
        assert np.isclose(report.slope, 1.0)
        assert np.isclose(report.mean_bias, 0.0, atol=1e-9)
        assert np.isclose(report.correlation, 1.0)

    def test_biased_predictor_detected(self, splits):
        _, _, test = splits

        def biased(instance):
            return instance.route, instance.arrival_times + 15.0

        report = calibration_report(biased, list(test))
        assert report.mean_bias > 14.0
        assert "bias=+" in report.render()

    def test_requires_data(self):
        with pytest.raises(ValueError):
            calibration_report(lambda i: ([], []), [])


class TestBreakdown:
    def test_by_weather_groups(self, predictor, splits):
        _, _, test = splits
        breakdown = breakdown_by(predictor, list(test),
                                 key=lambda i: i.weather)
        total = sum(int(stats["count"]) for stats in breakdown.values())
        assert total == len(test)
        for stats in breakdown.values():
            assert -1 <= stats["krc"] <= 1
            assert stats["time_mae"] >= 0

    def test_by_bucket(self, predictor, splits):
        _, _, test = splits
        breakdown = breakdown_by(
            predictor, list(test),
            key=lambda i: "small" if i.num_locations <= 10 else "large")
        assert set(breakdown) <= {"small", "large"}

    def test_format(self, predictor, splits):
        _, _, test = splits
        breakdown = breakdown_by(predictor, list(test),
                                 key=lambda i: i.weekday)
        text = format_breakdown(breakdown, "weekday")
        assert "KRC" in text and "weekday" in text
