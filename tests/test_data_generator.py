"""Behavioural tests for the synthetic workload generator.

These certify the two phenomena the substitution must preserve:
AOI-first transfer mode and route-time coupling.
"""

import numpy as np
import pytest

from repro.data import (
    GeneratorConfig,
    NUM_AOI_TYPES,
    RTPDataset,
    SyntheticWorld,
    transfer_statistics,
)


def small_world(seed=5):
    return SyntheticWorld(GeneratorConfig(
        num_aois=30, num_couriers=3, num_days=4,
        instances_per_courier_day=2, seed=seed))


class TestWorldConstruction:
    def test_aoi_count_and_types(self):
        world = small_world()
        assert len(world.aois) == 30
        assert all(0 <= aoi.aoi_type < NUM_AOI_TYPES for aoi in world.aois)

    def test_courier_count_and_preferences(self):
        world = small_world()
        assert len(world.couriers) == 3
        for courier in world.couriers:
            assert sorted(courier.aoi_type_preference) == list(range(NUM_AOI_TYPES))

    def test_deterministic_given_seed(self):
        a = SyntheticWorld(GeneratorConfig(num_aois=20, num_couriers=2,
                                           num_days=2, seed=42)).generate()
        b = SyntheticWorld(GeneratorConfig(num_aois=20, num_couriers=2,
                                           num_days=2, seed=42)).generate()
        assert len(a) == len(b)
        for x, y in zip(a, b):
            assert np.array_equal(x.route, y.route)
            assert np.allclose(x.arrival_times, y.arrival_times)

    def test_different_seeds_differ(self):
        a = SyntheticWorld(GeneratorConfig(num_aois=20, num_couriers=2,
                                           num_days=2, seed=1)).generate()
        b = SyntheticWorld(GeneratorConfig(num_aois=20, num_couriers=2,
                                           num_days=2, seed=2)).generate()
        assert any(not np.array_equal(x.route, y.route) for x, y in zip(a, b))


class TestInstanceProperties:
    def test_sizes_within_config(self):
        config = GeneratorConfig(num_aois=30, num_couriers=3, num_days=3,
                                 min_locations=3, max_locations=12,
                                 max_aois_per_instance=5, seed=9)
        for instance in SyntheticWorld(config).generate():
            assert 3 <= instance.num_locations <= 12
            assert 1 <= instance.num_aois <= 5

    def test_aoi_first_invariant(self, dataset):
        """The ground-truth route never revisits a finished AOI."""
        for instance in dataset:
            aoi_of = instance.aoi_index_of_location()
            seen = []
            for location_index in instance.route:
                aoi = aoi_of[location_index]
                if seen and seen[-1] == aoi:
                    continue
                assert aoi not in seen, "route returned to a finished AOI"
                seen.append(aoi)

    def test_aoi_route_matches_location_route(self, dataset):
        for instance in dataset:
            aoi_of = instance.aoi_index_of_location()
            first_seen = []
            for location_index in instance.route:
                aoi = aoi_of[location_index]
                if aoi not in first_seen:
                    first_seen.append(aoi)
            assert first_seen == instance.aoi_route.tolist()

    def test_arrival_monotone_along_route(self, dataset):
        for instance in dataset:
            ordered = instance.arrival_times[instance.route]
            assert np.all(np.diff(ordered) > 0)

    def test_aoi_arrival_is_first_location_arrival(self, dataset):
        for instance in dataset:
            aoi_of = instance.aoi_index_of_location()
            for aoi_index in range(instance.num_aois):
                members = [i for i in range(instance.num_locations)
                           if aoi_of[i] == aoi_index]
                assert np.isclose(instance.aoi_arrival_times[aoi_index],
                                  instance.arrival_times[members].min())

    def test_deadlines_after_accept(self, dataset):
        for instance in dataset:
            for location in instance.locations:
                assert location.deadline > location.accept_time
                assert location.accept_time < instance.request_time

    def test_route_time_coupling(self, dataset):
        """Later route positions have later arrival times (by construction),
        and travel time between consecutive stops is bounded below by
        distance/speed."""
        instance = dataset[0]
        speed = instance.courier.speed  # clear-weather upper bound
        position = instance.courier_position
        previous_arrival = 0.0
        for location_index in instance.route:
            location = instance.locations[location_index]
            min_travel = location.distance_to(*position) / speed
            arrival = instance.arrival_times[location_index]
            assert arrival >= previous_arrival + min_travel * 0.69  # storm factor
            previous_arrival = arrival
            position = location.coord


class TestTransferStatistics:
    def test_day_simulation_shape(self):
        world = small_world()
        day = world.simulate_courier_day(0, 0, num_locations=52,
                                         num_aois=7, seed=3)
        assert day.num_locations == 52
        assert day.num_aois <= 7

    def test_transfer_ratio_matches_paper_phenomenon(self):
        """Paper: ~51 location transfers vs ~6 AOI transfers per day."""
        world = small_world()
        days = [world.simulate_courier_day(c % 3, 0, seed=c)
                for c in range(6)]
        location_transfers, aoi_transfers = transfer_statistics(days)
        assert location_transfers > 45
        assert aoi_transfers < 10
        assert location_transfers / aoi_transfers > 5

    def test_transfer_statistics_simple_case(self, dataset):
        location_transfers, aoi_transfers = transfer_statistics(list(dataset))
        assert aoi_transfers <= location_transfers


class TestCourierPreferenceSignal:
    def test_preferred_types_visited_earlier(self):
        """Across many instances, a courier's top-preference AOI types
        should appear earlier in the AOI route than bottom ones."""
        config = GeneratorConfig(num_aois=60, num_couriers=2, num_days=30,
                                 instances_per_courier_day=2, seed=11,
                                 urgency_strength=0.0,
                                 route_noise_meters=50.0)
        world = SyntheticWorld(config)
        courier = world.couriers[0]
        top = set(courier.aoi_type_preference[:2])
        bottom = set(courier.aoi_type_preference[-2:])
        top_positions, bottom_positions = [], []
        for instance in world.generate():
            if instance.courier.courier_id != 0 or instance.num_aois < 3:
                continue
            for position, aoi_index in enumerate(instance.aoi_route):
                aoi_type = instance.aois[aoi_index].aoi_type
                relative = position / (instance.num_aois - 1)
                if aoi_type in top:
                    top_positions.append(relative)
                elif aoi_type in bottom:
                    bottom_positions.append(relative)
        assert np.mean(top_positions) < np.mean(bottom_positions)
