"""Optimiser tests: convergence on convex problems, schedules, clipping."""

import numpy as np
import pytest

from repro.autodiff import SGD, Adam, AdamW, StepLR, Tensor, clip_grad_norm


def quadratic_step(optimizer, parameter, target):
    optimizer.zero_grad()
    loss = ((parameter - Tensor(target)) ** 2).sum()
    loss.backward()
    optimizer.step()
    return loss.item()


@pytest.mark.parametrize("optimizer_cls,kwargs", [
    (SGD, {"lr": 0.1}),
    (SGD, {"lr": 0.05, "momentum": 0.9}),
    (Adam, {"lr": 0.1}),
    (AdamW, {"lr": 0.1, "weight_decay": 1e-4}),
])
def test_converges_on_quadratic(optimizer_cls, kwargs):
    target = np.array([3.0, -2.0, 0.5])
    parameter = Tensor(np.zeros(3), requires_grad=True)
    optimizer = optimizer_cls([parameter], **kwargs)
    for _ in range(200):
        quadratic_step(optimizer, parameter, target)
    assert np.allclose(parameter.data, target, atol=0.05)


def test_sgd_weight_decay_shrinks_weights():
    parameter = Tensor(np.ones(4), requires_grad=True)
    optimizer = SGD([parameter], lr=0.1, weight_decay=1.0)
    # Zero-gradient steps: only decay acts.
    for _ in range(10):
        optimizer.zero_grad()
        parameter.grad = np.zeros(4)
        optimizer.step()
    assert np.all(parameter.data < 1.0)


def test_optimizer_requires_parameters():
    with pytest.raises(ValueError):
        Adam([], lr=0.1)


def test_step_skips_parameters_without_grad():
    a = Tensor(np.ones(2), requires_grad=True)
    b = Tensor(np.ones(2), requires_grad=True)
    optimizer = Adam([a, b], lr=0.5)
    loss = (a ** 2).sum()
    loss.backward()
    optimizer.step()
    assert np.allclose(b.data, 1.0)
    assert not np.allclose(a.data, 1.0)


def test_zero_grad_clears():
    a = Tensor(np.ones(2), requires_grad=True)
    optimizer = SGD([a], lr=0.1)
    (a ** 2).sum().backward()
    assert a.grad is not None
    optimizer.zero_grad()
    assert a.grad is None


def test_step_lr_halves():
    parameter = Tensor(np.zeros(1), requires_grad=True)
    optimizer = SGD([parameter], lr=1.0)
    schedule = StepLR(optimizer, step_size=2, gamma=0.5)
    schedule.step()
    assert optimizer.lr == 1.0
    schedule.step()
    assert optimizer.lr == 0.5
    schedule.step()
    schedule.step()
    assert optimizer.lr == 0.25


def test_clip_grad_norm_scales_down():
    a = Tensor(np.zeros(2), requires_grad=True)
    a.grad = np.array([3.0, 4.0])  # norm 5
    norm = clip_grad_norm([a], max_norm=1.0)
    assert np.isclose(norm, 5.0)
    assert np.isclose(np.linalg.norm(a.grad), 1.0)


def test_clip_grad_norm_leaves_small_grads():
    a = Tensor(np.zeros(2), requires_grad=True)
    a.grad = np.array([0.3, 0.4])
    clip_grad_norm([a], max_norm=1.0)
    assert np.allclose(a.grad, [0.3, 0.4])


def test_clip_handles_missing_grads():
    a = Tensor(np.zeros(2), requires_grad=True)
    assert clip_grad_norm([a], max_norm=1.0) == 0.0


def test_adam_bias_correction_first_step():
    parameter = Tensor(np.array([0.0]), requires_grad=True)
    optimizer = Adam([parameter], lr=0.1)
    parameter.grad = np.array([1.0])
    optimizer.step()
    # With bias correction the first step is ~lr regardless of betas.
    assert np.isclose(parameter.data[0], -0.1, atol=1e-6)
