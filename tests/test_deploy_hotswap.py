"""Hot-swap concurrency: coherent versions for in-flight requests.

A promote or rollback landing *while requests are in flight* must
never produce a torn answer: every response carries the
``model_version`` of a service it was actually admitted to, no request
errors out because the candidate was yanked mid-call, and once the
swap has drained every new request is stamped with the surviving
version.  Covered in both deployment shapes:

* single-process :class:`~repro.deploy.DeploymentController` hammered
  from serving threads while the main thread flips canary → promote /
  rollback;
* the sharded tier (:class:`~repro.serving_shard.ShardDeploymentController`)
  where the same lifecycle is a broadcast drain over worker queues.
"""

import threading

import numpy as np
import pytest

from repro.core import M2G4RTP, M2G4RTPConfig
from repro.deploy import (DeploymentController, ModelRegistry,
                          ResilienceConfig, RolloutPolicy)
from repro.service import RTPRequest
from repro.serving_shard import (ShardConfig, ShardDeploymentController,
                                 ShardRouter)


def tiny_model(seed: int) -> M2G4RTP:
    model = M2G4RTP(M2G4RTPConfig(
        hidden_dim=16, num_heads=2, num_encoder_layers=1,
        continuous_embed_dim=8, discrete_embed_dim=4, position_dim=4,
        courier_embed_dim=4, seed=seed))
    model.eval()
    return model


@pytest.fixture()
def registry(tmp_path):
    registry = ModelRegistry(tmp_path / "registry")
    registry.register(tiny_model(seed=11), created_at="t1", data_seed=123)
    registry.register(tiny_model(seed=29), created_at="t2", data_seed=123)
    return registry


@pytest.fixture(scope="module")
def requests(dataset):
    instances = list(dataset)
    return [RTPRequest.from_instance(instances[i % len(instances)])
            for i in range(16)]


def make_controller(registry) -> DeploymentController:
    # min_requests is set far above the traffic volume so the rollout
    # verdict stays manual — these tests drive promote/rollback
    # explicitly while traffic is in flight.
    return DeploymentController(
        registry, initial="v001", seed=5,
        policy=RolloutPolicy(canary_fraction=0.5, min_requests=10_000),
        resilience=ResilienceConfig(deadline_ms=10_000.0))


def assert_valid(response, request):
    assert (sorted(int(i) for i in response.route)
            == list(range(request.num_locations)))
    assert np.all(np.isfinite(response.eta_minutes))


class TestSingleProcessHotSwap:
    def _hammer(self, controller, requests, versions_seen, errors,
                stop, barrier):
        rng = np.random.default_rng()
        barrier.wait()
        while not stop.is_set():
            request = requests[int(rng.integers(len(requests)))]
            try:
                response = controller.handle(request)
                assert_valid(response, request)
                versions_seen.append(response.model_version)
            except Exception as exc:  # pragma: no cover - the failure mode
                errors.append(exc)
                return

    def test_concurrent_promote_is_coherent(self, registry, requests):
        controller = make_controller(registry)
        versions_seen, errors = [], []
        stop, barrier = threading.Event(), threading.Barrier(3)
        threads = [threading.Thread(
            target=self._hammer,
            args=(controller, requests, versions_seen, errors, stop,
                  barrier)) for _ in range(2)]
        for thread in threads:
            thread.start()
        barrier.wait()
        controller.start_canary("v002")
        controller.promote(reason="test")
        # Post-promote traffic keeps flowing before the threads stop.
        for request in requests[:4]:
            assert controller.handle(request).model_version == "v002"
        stop.set()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors, f"in-flight request broke during promote: {errors}"
        assert set(versions_seen) <= {"v001", "v002"}
        assert controller.active_version == "v002"
        assert registry.active() == "v002"

    def test_concurrent_rollback_is_coherent(self, registry, requests):
        controller = make_controller(registry)
        versions_seen, errors = [], []
        stop, barrier = threading.Event(), threading.Barrier(3)
        threads = [threading.Thread(
            target=self._hammer,
            args=(controller, requests, versions_seen, errors, stop,
                  barrier)) for _ in range(2)]
        for thread in threads:
            thread.start()
        barrier.wait()
        # Repeated canary/rollback flaps while traffic is in flight —
        # the single most race-prone lifecycle (candidate repeatedly
        # appears and vanishes under the serving threads).
        for _ in range(5):
            controller.start_canary("v002")
            controller.rollback(reason="test")
        stop.set()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors, f"in-flight request broke during rollback: {errors}"
        assert set(versions_seen) <= {"v001", "v002"}
        assert controller.active_version == "v001"
        assert registry.active() == "v001"
        assert controller.mode is None and controller.candidate is None

    def test_rollback_without_candidate_still_raises(self, registry):
        controller = make_controller(registry)
        with pytest.raises(RuntimeError):
            controller.rollback()
        with pytest.raises(RuntimeError):
            controller.promote()


class TestShardedHotSwap:
    def test_inline_promote_rollback_lifecycle(self, registry, requests):
        model, _ = registry.load("v001")
        router = ShardRouter(model, version="v001",
                             config=ShardConfig(num_shards=2, seed=4),
                             inline=True)
        controller = ShardDeploymentController(registry, router)
        controller.start_canary("v002", fraction=0.5)
        versions = set()
        for request in requests:
            response = router.handle(request)
            assert_valid(response, request)
            versions.add(response.model_version)
        assert versions == {"v001", "v002"}

        controller.rollback(reason="test")
        assert controller.active_version == "v001"
        assert all(router.handle(r).model_version == "v001"
                   for r in requests[:4])

        controller.start_canary("v002", fraction=0.5)
        controller.promote(reason="test")
        assert controller.active_version == "v002"
        assert registry.active() == "v002"
        assert all(router.handle(r).model_version == "v002"
                   for r in requests[:4])
        assert [d.action for d in controller.decisions] == [
            "rollback", "promote"]

    def test_process_mode_promote_drains_in_flight(self, registry,
                                                   requests):
        """Pipelined submissions across a promote: versions coherent,
        FIFO-monotonic per shard, and nothing dropped."""
        model, _ = registry.load("v001")
        router = ShardRouter(model, version="v001",
                             config=ShardConfig(num_shards=2, seed=4),
                             inline=False)
        try:
            controller = ShardDeploymentController(registry, router)
            controller.start_canary("v002", fraction=0.5)
            promote_at = len(requests) // 2
            tickets = []
            for i, request in enumerate(requests):
                if i == promote_at:
                    controller.promote(reason="test")
                tickets.append(router.submit(request))
            responses = router.wait_all(tickets)
            assert len(responses) == len(requests)
            for i, response in enumerate(responses):
                assert response.model_version in ("v001", "v002")
                if i >= promote_at:
                    # promote() returns only after every shard acked the
                    # drain, so everything submitted after it is new.
                    assert response.model_version == "v002"
            assert registry.active() == "v002"
            assert controller.active_version == "v002"
        finally:
            router.shutdown()
