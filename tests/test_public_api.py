"""Public-API quality gates: exports resolve, are documented, and
``__all__`` is consistent across every package."""

import importlib
import inspect

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.autodiff",
    "repro.nn",
    "repro.data",
    "repro.graphs",
    "repro.core",
    "repro.baselines",
    "repro.metrics",
    "repro.obs",
    "repro.training",
    "repro.eval",
    "repro.service",
    "repro.experiments",
    "repro.deploy",
    "repro.parallel",
]


@pytest.mark.parametrize("package_name", PACKAGES)
class TestPublicAPI:
    def test_all_exports_resolve(self, package_name):
        package = importlib.import_module(package_name)
        assert hasattr(package, "__all__"), f"{package_name} missing __all__"
        for name in package.__all__:
            assert hasattr(package, name), (
                f"{package_name}.__all__ lists {name!r} but it is not "
                "importable")

    def test_public_callables_documented(self, package_name):
        package = importlib.import_module(package_name)
        undocumented = []
        for name in package.__all__:
            member = getattr(package, name)
            if inspect.isclass(member) or inspect.isfunction(member):
                if not inspect.getdoc(member):
                    undocumented.append(name)
        assert not undocumented, (
            f"{package_name} exports undocumented public API: {undocumented}")

    def test_no_duplicate_exports(self, package_name):
        package = importlib.import_module(package_name)
        assert len(package.__all__) == len(set(package.__all__))


class TestVersionAndConveniences:
    def test_version_string(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3 and all(part.isdigit() for part in parts)

    def test_top_level_convenience_names(self):
        for name in ("M2G4RTP", "Trainer", "SyntheticWorld", "RTPDataset",
                     "GraphBuilder", "evaluate_method", "RTPService"):
            assert hasattr(repro, name)

    def test_public_modules_have_docstrings(self):
        for package_name in PACKAGES:
            package = importlib.import_module(package_name)
            assert package.__doc__, f"{package_name} missing module docstring"

    def test_cli_module_importable(self):
        from repro.cli import build_parser
        parser = build_parser()
        assert parser.prog == "repro-rtp"
