"""Unit tests for the repro.obs observability layer.

Covers span nesting and thread-locality, metric registry label
handling, the Prometheus exposition format (parsed line-by-line),
op-profiler accounting, and EventLog round-trips.
"""

import json
import re
import threading

import numpy as np
import pytest

import repro.autodiff as autodiff
from repro.autodiff import Tensor
from repro.obs import (
    EventLog,
    MetricsRegistry,
    OpProfiler,
    Span,
    TraceCollector,
    disable_tracing,
    enable_tracing,
    format_span_record,
    profile_ops,
    read_jsonl,
    span,
    summarize_events,
    summarize_spans,
    tracing_enabled,
)


@pytest.fixture(autouse=True)
def _tracing_off():
    """Every test starts and ends with process-wide tracing disabled."""
    disable_tracing()
    yield
    disable_tracing()


# ----------------------------------------------------------------------
# Tracing spans
# ----------------------------------------------------------------------
class TestSpans:
    def test_nesting_builds_tree(self):
        collector = TraceCollector()
        with collector.span("root"):
            with collector.span("child_a"):
                with collector.span("grandchild"):
                    pass
            with collector.span("child_b"):
                pass
        assert len(collector.roots) == 1
        root = collector.roots[0]
        assert root.name == "root"
        assert [c.name for c in root.children] == ["child_a", "child_b"]
        assert root.children[0].children[0].name == "grandchild"

    def test_durations_monotonic(self):
        collector = TraceCollector()
        with collector.span("outer"):
            with collector.span("inner"):
                sum(range(1000))
        outer = collector.roots[0]
        inner = outer.children[0]
        assert outer.duration_ms >= inner.duration_ms > 0.0

    def test_attrs_via_kwargs_and_set_attr(self):
        collector = TraceCollector()
        with collector.span("s", level="aoi") as s:
            s.set_attr("count", 3)
        assert collector.roots[0].attrs["level"] == "aoi"
        assert collector.roots[0].attrs["count"] == 3

    def test_thread_locality(self):
        collector = TraceCollector()

        def worker(tag):
            with collector.span(f"root_{tag}"):
                with collector.span(f"child_{tag}"):
                    pass

        threads = [threading.Thread(target=worker, args=(i,), name=f"t{i}")
                   for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Four independent roots, each with exactly its own child —
        # no cross-thread nesting.
        assert len(collector.roots) == 4
        for root in collector.roots:
            tag = root.name.split("_")[1]
            assert [c.name for c in root.children] == [f"child_{tag}"]

    def test_global_switch(self):
        assert not tracing_enabled()
        null = span("ignored")
        with null as s:
            s.set_attr("x", 1)  # no-op, must not raise
        collector = enable_tracing()
        assert tracing_enabled()
        with span("real"):
            pass
        assert [s.name for s in collector.roots] == ["real"]
        assert disable_tracing() is collector
        with span("after_disable"):
            pass
        assert len(collector.roots) == 1

    def test_exception_still_finishes_span(self):
        collector = TraceCollector()
        with pytest.raises(RuntimeError):
            with collector.span("boom"):
                raise RuntimeError("x")
        assert collector.roots[0].duration_ms >= 0.0
        assert collector.current() is None

    def test_jsonl_round_trip(self, tmp_path):
        collector = TraceCollector()
        with collector.span("request", cache_hit=False):
            with collector.span("build"):
                pass
        path = tmp_path / "trace.jsonl"
        assert collector.write_jsonl(path) == 1
        records = read_jsonl(path)
        assert len(records) == 1
        root = records[0]
        assert root["name"] == "request"
        assert root["attrs"]["cache_hit"] is False
        assert root["children"][0]["name"] == "build"
        # Every line is standalone JSON.
        for line in path.read_text().splitlines():
            json.loads(line)

    def test_render_and_summary(self):
        collector = TraceCollector()
        with collector.span("a"):
            with collector.span("b"):
                pass
        text = collector.render()
        assert "a" in text and "└─ b" in text and "ms" in text
        records = [root.to_dict() for root in collector.roots]
        summary = summarize_spans(records)
        assert "a" in summary and "b" in summary and "calls" in summary
        tree = format_span_record(records[0])
        assert "└─ b" in tree


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_counter_get_or_create(self):
        registry = MetricsRegistry()
        a = registry.counter("x_total", "help")
        b = registry.counter("x_total")
        assert a is b
        a.inc()
        a.inc(3)
        assert a.value == 4

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(ValueError):
            registry.gauge("x_total")

    def test_counter_cannot_decrease(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("c_total").inc(-1)

    def test_label_children_independent(self):
        registry = MetricsRegistry()
        counter = registry.counter("req_total", labels=("path",))
        counter.labels(path="single").inc(2)
        counter.labels(path="batch").inc(5)
        assert counter.labels(path="single").value == 2
        assert counter.labels(path="batch").value == 5
        text = registry.render()
        assert 'req_total{path="batch"} 5' in text
        assert 'req_total{path="single"} 2' in text

    def test_label_name_mismatch_rejected(self):
        registry = MetricsRegistry()
        counter = registry.counter("req_total", labels=("path",))
        with pytest.raises(ValueError):
            counter.labels(wrong="x")
        with pytest.raises(ValueError):
            counter.inc()  # label-less use of a labelled instrument
        with pytest.raises(ValueError):
            registry.counter("req_total", labels=("other",))

    def test_gauge_set_inc(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        gauge.set(2.5)
        gauge.inc(0.5)
        assert gauge.value == 3.0
        assert "g 3" in registry.render()

    def test_summary_sum_count(self):
        registry = MetricsRegistry()
        summary = registry.summary("s_ms")
        summary.observe(1.5)
        summary.observe(2.5)
        text = registry.render()
        assert "s_ms_sum 4.000" in text
        assert "s_ms_count 2" in text

    def test_histogram_buckets_validated(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("h", buckets=(5.0, 1.0))

    def test_histogram_appends_inf(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=(1.0, 2.0))
        assert histogram.buckets[-1] == float("inf")

    def test_exposition_format_parses(self):
        """Line-by-line parse: TYPE lines, cumulative monotone buckets,
        +Inf bucket equals the count."""
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "lat_ms", "latency", buckets=(1.0, 5.0, 25.0, float("inf")))
        for value in (0.5, 0.7, 3.0, 30.0, 100.0):
            histogram.observe(value)
        registry.counter("q_total").inc(5)
        lines = registry.render().splitlines()
        types = {line.split()[2]: line.split()[3]
                 for line in lines if line.startswith("# TYPE")}
        assert types == {"lat_ms": "histogram", "q_total": "counter"}
        bucket_re = re.compile(r'lat_ms_bucket\{le="([^"]+)"\} (\d+)')
        buckets = [(m.group(1), int(m.group(2)))
                   for m in map(bucket_re.match, lines) if m]
        assert [b[0] for b in buckets] == ["1", "5", "25", "+Inf"]
        counts = [b[1] for b in buckets]
        assert counts == sorted(counts), "cumulative buckets must be monotone"
        count_line = next(l for l in lines if l.startswith("lat_ms_count"))
        assert counts[-1] == int(count_line.split()[-1])
        sum_line = next(l for l in lines if l.startswith("lat_ms_sum"))
        assert float(sum_line.split()[-1]) == pytest.approx(134.2)

    def test_reset_zeroes_but_keeps_registration(self):
        registry = MetricsRegistry()
        counter = registry.counter("x_total")
        counter.inc(7)
        registry.reset()
        assert counter.value == 0
        assert registry.counter("x_total") is counter


class TestRegistryThreadSafety:
    """Every write path mutates under the instrument lock, so hammering
    one instrument from many threads must lose no updates (the contract
    the parallel-training coordinator and serving threads rely on)."""

    THREADS = 8
    PER_THREAD = 500

    def _hammer(self, work):
        barrier = threading.Barrier(self.THREADS)

        def run():
            barrier.wait()   # maximise interleaving
            for _ in range(self.PER_THREAD):
                work()

        threads = [threading.Thread(target=run)
                   for _ in range(self.THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    def test_concurrent_counter_increments_are_exact(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total")
        self._hammer(lambda: counter.inc())
        assert counter.value == self.THREADS * self.PER_THREAD

    def test_concurrent_labelled_counter_is_exact(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", labels=("worker",))

        def work():
            for worker in ("0", "1"):
                counter.labels(worker=worker).inc()

        self._hammer(work)
        expected = self.THREADS * self.PER_THREAD
        assert counter.labels(worker="0").value == expected
        assert counter.labels(worker="1").value == expected

    def test_concurrent_summary_and_gauge_are_exact(self):
        registry = MetricsRegistry()
        summary = registry.summary("s")
        gauge = registry.gauge("g")

        def work():
            summary.observe(0.5)
            gauge.inc(1.0)

        self._hammer(work)
        total = self.THREADS * self.PER_THREAD
        assert gauge.value == total
        text = registry.render()
        assert f"s_count {total}" in text
        assert f"s_sum {total * 0.5:.3f}" in text

    def test_render_during_writes_never_tears(self):
        """A histogram rendered mid-write must stay internally
        consistent: cumulative buckets monotone and +Inf == count."""
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=(1.0, 2.0))
        stop = threading.Event()
        torn = []

        def render_loop():
            bucket_re = re.compile(r'h_bucket\{le="[^"]+"\} (\d+)')
            while not stop.is_set():
                lines = registry.render().splitlines()
                counts = [int(m.group(1)) for m
                          in map(bucket_re.match, lines) if m]
                count = next((int(line.split()[-1]) for line in lines
                              if line.startswith("h_count")), None)
                if counts != sorted(counts) or counts[-1] != count:
                    torn.append(lines)
                    return

        reader = threading.Thread(target=render_loop)
        reader.start()
        try:
            self._hammer(lambda: histogram.observe(1.5))
        finally:
            stop.set()
            reader.join()
        assert not torn
        assert f"h_count {self.THREADS * self.PER_THREAD}" \
            in registry.render()


# ----------------------------------------------------------------------
# Op profiler
# ----------------------------------------------------------------------
class TestOpProfiler:
    def test_counts_and_bytes(self):
        a = Tensor(np.ones((8, 8)), requires_grad=True)
        b = Tensor(np.ones((8, 8)))
        with profile_ops() as prof:
            c = (a @ b).relu()
            c.sum()
        stats = prof.stats()
        assert stats["matmul"].calls == 1
        assert stats["relu"].calls == 1
        assert stats["sum"].calls == 1
        assert stats["matmul"].peak_bytes == 8 * 8 * 8  # float64
        assert stats["matmul"].self_ms >= 0.0

    def test_composite_ops_self_time(self):
        """mean = sum * scale: nested calls are counted, and the self
        times never double-count the nested work."""
        a = Tensor(np.ones(1000))
        with profile_ops() as prof:
            a.mean()
        stats = prof.stats()
        assert stats["mean"].calls == 1
        assert stats["sum"].calls == 1
        assert stats["mul"].calls == 1
        total = prof.total_ms()
        assert total >= stats["mean"].self_ms

    def test_functional_ops_captured(self):
        logits = Tensor(np.random.default_rng(0).normal(size=(4, 5)))
        with profile_ops() as prof:
            autodiff.softmax(logits)
            autodiff.concat([logits, logits], axis=0)
        stats = prof.stats()
        assert "softmax" in stats
        assert "concat" in stats

    def test_everything_restored_after_exit(self):
        original_mul = Tensor.__mul__
        original_softmax = autodiff.softmax
        with profile_ops():
            assert Tensor.__mul__ is not original_mul
            assert autodiff.softmax is not original_softmax
        assert Tensor.__mul__ is original_mul
        assert autodiff.softmax is original_softmax

    def test_restores_on_exception(self):
        original = Tensor.__add__
        with pytest.raises(RuntimeError):
            with profile_ops():
                raise RuntimeError("boom")
        assert Tensor.__add__ is original

    def test_profiled_values_identical(self):
        rng = np.random.default_rng(3)
        x = Tensor(rng.normal(size=(6, 6)), requires_grad=True)
        baseline = (x.tanh() @ x).sum()
        baseline.backward()
        grad_baseline = x.grad.copy()
        x.zero_grad()
        with profile_ops():
            profiled = (x.tanh() @ x).sum()
            profiled.backward()
        np.testing.assert_allclose(profiled.data, baseline.data)
        np.testing.assert_allclose(x.grad, grad_baseline)

    def test_report_and_publish(self):
        a = Tensor(np.ones((4, 4)))
        with profile_ops() as prof:
            (a * 2.0).sum()
        report = prof.report(top_k=5)
        assert "op" in report and "self ms" in report
        assert "mul" in report and "sum" in report
        registry = MetricsRegistry()
        prof.publish(registry)
        text = registry.render()
        assert 'autodiff_op_calls_total{op="mul"}' in text
        assert "autodiff_op_self_ms_total" in text


# ----------------------------------------------------------------------
# Event log
# ----------------------------------------------------------------------
class TestEventLog:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path) as log:
            log.log("epoch", epoch=0, train_loss=1.5, val_loss=1.7,
                    grad_norm=3.2, lr=0.003, seconds=0.5)
            log.log("epoch", epoch=1, train_loss=1.2, val_loss=1.4,
                    grad_norm=2.1, lr=0.003, seconds=0.4)
            log.log("fit", epochs=2, best_epoch=1, total_seconds=0.9)
        records = read_jsonl(path)
        assert len(records) == 3
        assert [r["seq"] for r in records] == [0, 1, 2]
        assert records[0]["type"] == "epoch"
        assert records[2]["best_epoch"] == 1

    def test_append_mode_inspectable_mid_run(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path)
        log.log("epoch", epoch=0, train_loss=2.0)
        # Readable before close (flushed line-by-line).
        assert len(read_jsonl(path)) == 1
        log.log("epoch", epoch=1, train_loss=1.0)
        log.close()
        assert len(read_jsonl(path)) == 2

    def test_summarize_events(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path) as log:
            log.log("epoch", epoch=0, train_loss=1.5, val_loss=None,
                    grad_norm=1.0, lr=3e-3, seconds=0.1,
                    sigmas={"aoi_route": 0.9})
            log.log("fit", epochs=1, best_epoch=-1, total_seconds=0.1)
        summary = summarize_events(read_jsonl(path))
        assert "epoch" in summary
        assert "1.5000" in summary
        assert "best epoch -1" in summary
        assert "aoi_route" in summary

    def test_summarize_empty(self):
        assert "no epoch" in summarize_events([{"type": "other"}])
