"""Differential conformance suite for the fused kernel backend.

Contract (see ``repro.kernels``): for every no-grad inference kernel —
GAT-e encoder stack, LSTM/GRU steppers, pointer decode, sort-RNN — the
``fused`` backend must reproduce the ``reference`` backend exactly:

* encoder embeddings within 1e-8 (empirically bit-identical, and the
  suite asserts the stronger property);
* decoded routes exactly, at both levels, including tie behaviour and
  the padding region;
* arrival times within 1e-8 (again asserted bit-identical).

The sweep covers randomized instances from 1 to 64 locations and 1 to
16 AOIs, every ablation variant, both decoder cell types, and the
degenerate shapes that historically break masked kernels: single-node
graphs, fully-masked attention rows and zero-length decode rows.  A
seeded fuzz sweep over random kernel-level shapes runs under
``--runslow``.
"""

import threading
import warnings

import numpy as np
import pytest

from repro import kernels
from repro.autodiff import Tensor, concat, no_grad
from repro.core import BatchedM2G4RTP, GraphBatch, M2G4RTP, M2G4RTPConfig, make_variant
from repro.core.decoder import RecurrentCell
from repro.core.gat_e import GATEEncoder
from repro.kernels import (
    KernelUnavailableError,
    Workspace,
    dispatch,
    fused,
    get_workspace,
    reference,
)
from repro.nn.recurrent import LSTMCell


def small_config(**overrides) -> M2G4RTPConfig:
    base = dict(hidden_dim=16, num_heads=2, num_encoder_layers=1,
                continuous_embed_dim=8, discrete_embed_dim=4,
                position_dim=4, courier_embed_dim=4, seed=5)
    base.update(overrides)
    return M2G4RTPConfig(**base)


# ----------------------------------------------------------------------
# Dispatch layer
# ----------------------------------------------------------------------
class TestDispatch:
    @pytest.fixture(autouse=True)
    def _restore(self, monkeypatch):
        monkeypatch.delenv(dispatch.ENV_VAR, raising=False)
        yield
        dispatch._reset()

    def test_use_returns_previous_and_switches(self):
        previous = kernels.use("reference")
        try:
            assert kernels.active_name() == "reference"
            assert kernels.active() is reference
        finally:
            kernels.use(previous)

    def test_backend_scope_restores(self):
        before = kernels.active_name()
        with kernels.backend_scope("reference"):
            assert kernels.active_name() == "reference"
        assert kernels.active_name() == before

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            kernels.use("turbo")
        with pytest.raises(ValueError):
            kernels.require("turbo")

    def test_both_backends_available(self):
        status = kernels.available_backends()
        assert status == {"reference": None, "fused": None}
        kernels.require("fused")
        kernels.require("reference")

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv(dispatch.ENV_VAR, "reference")
        dispatch._reset()
        assert kernels.active_name() == "reference"

    def test_invalid_env_var_is_loud(self, monkeypatch):
        monkeypatch.setenv(dispatch.ENV_VAR, "nope")
        dispatch._reset()
        with pytest.raises(ValueError):
            kernels.active_name()

    def test_broken_fused_default_falls_back_with_warning(self):
        dispatch._reset()
        dispatch._modules.pop("fused", None)
        dispatch._import_errors["fused"] = "simulated import failure"
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert kernels.active_name() == "reference"
        assert any(issubclass(w.category, RuntimeWarning) for w in caught)
        assert "simulated import failure" in kernels.fallback_reason()

    def test_broken_fused_explicit_request_propagates(self, monkeypatch):
        dispatch._reset()
        dispatch._modules.pop("fused", None)
        dispatch._import_errors["fused"] = "simulated import failure"
        with warnings.catch_warnings():
            # use() resolves the previous selection first, which falls
            # back (loudly) to reference; that warning is expected here.
            warnings.simplefilter("ignore", RuntimeWarning)
            with pytest.raises(KernelUnavailableError):
                kernels.use("fused")
        monkeypatch.setenv(dispatch.ENV_VAR, "fused")
        dispatch._reset(clear_import_errors=False)
        with pytest.raises(KernelUnavailableError):
            kernels.active_name()


# ----------------------------------------------------------------------
# Workspace allocator
# ----------------------------------------------------------------------
class TestWorkspace:
    def test_same_key_reuses_buffer(self):
        ws = Workspace()
        a = ws.buf("x", (3, 4))
        b = ws.buf("x", (3, 4))
        assert a is b
        assert ws.hits == 1 and ws.misses == 1

    def test_distinct_tags_and_shapes_get_distinct_buffers(self):
        ws = Workspace()
        a = ws.buf("x", (3, 4))
        assert ws.buf("y", (3, 4)) is not a
        assert ws.buf("x", (4, 3)) is not a
        assert ws.buf("x", (3, 4), dtype=np.int64) is not a
        assert len(ws) == 4

    def test_zeros_is_zeroed_on_every_call(self):
        ws = Workspace()
        a = ws.zeros("z", (2, 2))
        a[...] = 7.0
        assert not ws.zeros("z", (2, 2)).any()

    def test_lru_cap_evicts_oldest(self):
        ws = Workspace(max_entries=2)
        a = ws.buf("a", (1,))
        ws.buf("b", (1,))
        ws.buf("c", (1,))          # evicts "a"
        assert len(ws) == 2
        assert ws.buf("a", (1,)) is not a   # re-created, was evicted
        assert ws.misses == 4

    def test_clear_and_nbytes(self):
        ws = Workspace()
        ws.buf("x", (4, 8))
        assert ws.nbytes == 4 * 8 * 8
        ws.clear()
        assert len(ws) == 0 and ws.nbytes == 0 and ws.hits == 0

    def test_thread_local_workspaces(self):
        main_ws = get_workspace()
        seen = {}

        def worker():
            seen["ws"] = get_workspace()

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert seen["ws"] is not main_ws
        assert get_workspace() is main_ws


# ----------------------------------------------------------------------
# Kernel units: recurrent steppers
# ----------------------------------------------------------------------
class TestRecurrentKernels:
    @pytest.mark.parametrize("cell_type", ["lstm", "gru"])
    @pytest.mark.parametrize("batch", [1, 5])
    def test_stepper_matches_reference(self, cell_type, batch, rng):
        recurrent = RecurrentCell(6, 8, rng, cell_type=cell_type)
        xs = rng.normal(size=(10, batch, 6))
        fused_rec = fused._FusedRecurrent(recurrent, batch, Workspace(), "t")
        state = reference._initial_numpy_state(recurrent, batch)
        for step in range(xs.shape[0]):
            h_ref, state = reference.recurrent_step(recurrent, xs[step], state)
            h_fused = fused_rec.step(xs[step])
            np.testing.assert_array_equal(h_fused, h_ref)

    @pytest.mark.parametrize("cell_type", ["lstm", "gru"])
    def test_stepper_1d_start_token_broadcast(self, cell_type, rng):
        """A 1-D input (the decoder start token) must broadcast exactly
        like the reference's vector-matmul path."""
        recurrent = RecurrentCell(6, 8, rng, cell_type=cell_type)
        token = rng.normal(size=6)
        fused_rec = fused._FusedRecurrent(recurrent, 3, Workspace(), "t")
        state = reference._initial_numpy_state(recurrent, 3)
        h_ref, state = reference.recurrent_step(recurrent, token, state)
        h_fused = fused_rec.step(token)
        np.testing.assert_array_equal(h_fused, np.broadcast_to(h_ref, (3, 8)))

    def test_lstm_unroll_matches_reference(self, rng):
        cell = LSTMCell(5, 7, rng)
        sequence = rng.normal(size=(4, 9, 5))
        with no_grad():
            out_ref = reference.lstm_unroll(cell, sequence)
        out_fused = fused.lstm_unroll(cell, sequence)
        np.testing.assert_array_equal(out_fused, out_ref)

    def test_lstm_unroll_length_one_sequence(self, rng):
        cell = LSTMCell(5, 7, rng)
        sequence = rng.normal(size=(2, 1, 5))
        with no_grad():
            np.testing.assert_array_equal(
                fused.lstm_unroll(cell, sequence),
                reference.lstm_unroll(cell, sequence))


# ----------------------------------------------------------------------
# Kernel units: GAT-e encoder stack
# ----------------------------------------------------------------------
def random_gat_inputs(rng, batch, n, dim, mask_rows=0):
    nodes = rng.normal(size=(batch, n, dim))
    edges = rng.normal(size=(batch, n, n, dim))
    adjacency = rng.random((batch, n, n)) < 0.6
    for b in range(batch):
        for row in rng.choice(n, size=min(mask_rows, n), replace=False):
            adjacency[b, row, :] = False
    return nodes, edges, adjacency


class TestGATKernel:
    @pytest.mark.parametrize("need_edges", [True, False])
    def test_stack_matches_reference(self, rng, need_edges):
        gat = GATEEncoder(dim=8, num_layers=2, num_heads=2, rng=rng)
        nodes, edges, adjacency = random_gat_inputs(rng, batch=3, n=7, dim=8)
        with no_grad():
            ref_nodes, ref_edges = reference.gat_encoder_forward(
                gat, nodes, edges, adjacency, need_edges=need_edges)
        fused_nodes, fused_edges = fused.gat_encoder_forward(
            gat, nodes, edges, adjacency, need_edges=need_edges)
        np.testing.assert_array_equal(fused_nodes, ref_nodes)
        if need_edges:
            np.testing.assert_array_equal(fused_edges, ref_edges)
        else:
            assert fused_edges is None and ref_edges is None

    def test_fully_masked_rows_are_finite_and_equal(self, rng):
        """Rows with no neighbours (padding) must yield zeros, not NaN."""
        gat = GATEEncoder(dim=8, num_layers=2, num_heads=2, rng=rng)
        nodes, edges, adjacency = random_gat_inputs(
            rng, batch=2, n=6, dim=8, mask_rows=3)
        with no_grad():
            ref_nodes, _ = reference.gat_encoder_forward(
                gat, nodes, edges, adjacency)
        fused_nodes, _ = fused.gat_encoder_forward(gat, nodes, edges, adjacency)
        assert np.isfinite(fused_nodes).all()
        np.testing.assert_array_equal(fused_nodes, ref_nodes)

    def test_all_rows_masked(self, rng):
        """An entirely disconnected graph (every row fully masked)."""
        gat = GATEEncoder(dim=8, num_layers=1, num_heads=2, rng=rng)
        nodes = rng.normal(size=(2, 4, 8))
        edges = rng.normal(size=(2, 4, 4, 8))
        adjacency = np.zeros((2, 4, 4), dtype=bool)
        with no_grad():
            ref_nodes, _ = reference.gat_encoder_forward(
                gat, nodes, edges, adjacency)
        fused_nodes, _ = fused.gat_encoder_forward(gat, nodes, edges, adjacency)
        assert np.isfinite(fused_nodes).all()
        np.testing.assert_array_equal(fused_nodes, ref_nodes)

    def test_single_node_graph(self, rng):
        gat = GATEEncoder(dim=8, num_layers=2, num_heads=2, rng=rng)
        nodes = rng.normal(size=(1, 1, 8))
        edges = rng.normal(size=(1, 1, 1, 8))
        for adjacency in (np.ones((1, 1, 1), dtype=bool),
                          np.zeros((1, 1, 1), dtype=bool)):
            with no_grad():
                ref_nodes, ref_edges = reference.gat_encoder_forward(
                    gat, nodes, edges, adjacency)
            fused_nodes, fused_edges = fused.gat_encoder_forward(
                gat, nodes, edges, adjacency)
            np.testing.assert_array_equal(fused_nodes, ref_nodes)
            np.testing.assert_array_equal(fused_edges, ref_edges)

    def test_outputs_detached_from_workspace(self, rng):
        """A second call must not corrupt previously returned arrays."""
        gat = GATEEncoder(dim=8, num_layers=1, num_heads=2, rng=rng)
        nodes, edges, adjacency = random_gat_inputs(rng, batch=2, n=5, dim=8)
        first, _ = fused.gat_encoder_forward(gat, nodes, edges, adjacency)
        snapshot = first.copy()
        fused.gat_encoder_forward(gat, nodes * 2.0, edges, adjacency)
        np.testing.assert_array_equal(first, snapshot)


# ----------------------------------------------------------------------
# Kernel units: level feature embedding
# ----------------------------------------------------------------------
class TestLevelEmbedKernel:
    @pytest.fixture()
    def level_encoder(self, rng):
        from repro.core.encoder import EncoderConfig, LevelEncoder
        config = EncoderConfig(hidden_dim=8, num_layers=1, num_heads=2,
                               continuous_embed_dim=6, discrete_embed_dim=4)
        return LevelEncoder(6, config, global_dim=10, rng=rng), config

    def embed_inputs(self, rng, batch=3, n=7):
        continuous = rng.normal(size=(batch, n, 6))
        discrete = np.stack([rng.integers(0, 256, size=(batch, n)),
                             rng.integers(0, 8, size=(batch, n))], axis=-1)
        edge_features = rng.normal(size=(batch, n, n, 3))
        global_data = rng.normal(size=(batch, 10))
        return continuous, discrete, edge_features, global_data

    def test_matches_reference(self, level_encoder, rng):
        encoder, _ = level_encoder
        inputs = self.embed_inputs(rng)
        with no_grad():
            ref_nodes, ref_edges = reference.level_embed(encoder, *inputs)
        out_nodes, out_edges = fused.level_embed(encoder, *inputs)
        np.testing.assert_array_equal(out_nodes, ref_nodes)
        np.testing.assert_array_equal(out_edges, ref_edges)

    def test_single_node_level(self, level_encoder, rng):
        encoder, _ = level_encoder
        inputs = self.embed_inputs(rng, batch=1, n=1)
        with no_grad():
            ref_nodes, ref_edges = reference.level_embed(encoder, *inputs)
        out_nodes, out_edges = fused.level_embed(encoder, *inputs)
        np.testing.assert_array_equal(out_nodes, ref_nodes)
        np.testing.assert_array_equal(out_edges, ref_edges)

    def test_out_of_range_embedding_index_raises(self, level_encoder, rng):
        encoder, _ = level_encoder
        continuous, discrete, edge_features, global_data = self.embed_inputs(rng)
        discrete[0, 0, 1] = 9999
        with pytest.raises(IndexError, match="out of range"):
            fused.level_embed(encoder, continuous, discrete, edge_features,
                              global_data)
        with no_grad(), pytest.raises(IndexError, match="out of range"):
            reference.level_embed(encoder, continuous, discrete,
                                  edge_features, global_data)


# ----------------------------------------------------------------------
# Kernel units: pointer decode and sort-RNN
# ----------------------------------------------------------------------
def build_decoders(rng, node_dim=10, courier_dim=4, cell_type="lstm",
                   restrict_to_neighbors=False):
    from repro.core.decoder import RouteDecoder, SortLSTM
    route = RouteDecoder(node_dim=node_dim, state_dim=8,
                         courier_dim=courier_dim, rng=rng,
                         cell_type=cell_type,
                         restrict_to_neighbors=restrict_to_neighbors)
    sort = SortLSTM(node_dim=node_dim, state_dim=8, position_dim=4,
                    rng=rng, cell_type=cell_type)
    return route, sort


class TestPointerDecodeKernel:
    @pytest.mark.parametrize("cell_type", ["lstm", "gru"])
    def test_matches_reference(self, rng, cell_type):
        route, _ = build_decoders(rng, cell_type=cell_type)
        nodes = rng.normal(size=(4, 9, 10))
        courier = rng.normal(size=(4, 4))
        lengths = np.array([9, 5, 1, 7])
        ref = reference.pointer_decode(route, nodes, courier, lengths)
        out = fused.pointer_decode(route, nodes, courier, lengths)
        np.testing.assert_array_equal(out, ref)

    def test_zero_length_rows(self, rng):
        """Exhausted rows must loop on the dummy candidate like reference."""
        route, _ = build_decoders(rng)
        nodes = rng.normal(size=(3, 6, 10))
        courier = rng.normal(size=(3, 4))
        lengths = np.array([0, 6, 3])
        np.testing.assert_array_equal(
            fused.pointer_decode(route, nodes, courier, lengths),
            reference.pointer_decode(route, nodes, courier, lengths))

    def test_single_node(self, rng):
        route, _ = build_decoders(rng)
        nodes = rng.normal(size=(1, 1, 10))
        courier = rng.normal(size=(1, 4))
        lengths = np.array([1])
        np.testing.assert_array_equal(
            fused.pointer_decode(route, nodes, courier, lengths),
            reference.pointer_decode(route, nodes, courier, lengths))

    def test_restrict_to_neighbors_path(self, rng):
        route, _ = build_decoders(rng, restrict_to_neighbors=True)
        nodes = rng.normal(size=(3, 8, 10))
        courier = rng.normal(size=(3, 4))
        lengths = np.array([8, 4, 6])
        adjacency = rng.random((3, 8, 8)) < 0.5
        np.testing.assert_array_equal(
            fused.pointer_decode(route, nodes, courier, lengths, adjacency),
            reference.pointer_decode(route, nodes, courier, lengths, adjacency))


class TestSortRNNKernel:
    @pytest.mark.parametrize("cell_type", ["lstm", "gru"])
    def test_matches_reference(self, rng, cell_type):
        _, sort = build_decoders(rng, cell_type=cell_type)
        batch, n = 4, 9
        nodes = rng.normal(size=(batch, n, 10))
        lengths = np.array([9, 5, 1, 7])
        routes = np.zeros((batch, n), dtype=np.int64)
        for b, k in enumerate(lengths):
            routes[b, :k] = rng.permutation(k)
        ref = reference.sort_rnn_forward(sort, nodes, routes, lengths)
        out = fused.sort_rnn_forward(sort, nodes, routes, lengths)
        np.testing.assert_array_equal(out, ref)
        # Padding positions are exactly zero.
        for b, k in enumerate(lengths):
            assert not out[b, k:].any()

    def test_single_step(self, rng):
        _, sort = build_decoders(rng)
        nodes = rng.normal(size=(1, 1, 10))
        routes = np.zeros((1, 1), dtype=np.int64)
        lengths = np.array([1])
        np.testing.assert_array_equal(
            fused.sort_rnn_forward(sort, nodes, routes, lengths),
            reference.sort_rnn_forward(sort, nodes, routes, lengths))


# ----------------------------------------------------------------------
# End-to-end sweep: full models over randomized instances
# ----------------------------------------------------------------------
SWEEP_SIZES = [(1, 1), (2, 1), (6, 3), (16, 8), (33, 12), (64, 16)]


@pytest.fixture(scope="module")
def sweep_graphs(world, builder):
    """Instances spanning 1-64 locations and 1-16 AOIs."""
    graphs = []
    for index, (num_locations, num_aois) in enumerate(SWEEP_SIZES):
        instance = world.simulate_courier_day(
            courier_index=index % 4, day=index % 6,
            num_locations=num_locations, num_aois=num_aois,
            seed=1000 + index)
        graphs.append(builder.build(instance))
    return graphs


def predict_both_backends(model, graphs):
    engine = BatchedM2G4RTP(model)
    with kernels.backend_scope("reference"):
        ref = engine.predict(graphs)
    with kernels.backend_scope("fused"):
        out = engine.predict(graphs)
    return ref, out


def assert_outputs_identical(ref, out):
    assert len(ref) == len(out)
    for r, f in zip(ref, out):
        np.testing.assert_array_equal(f.route, r.route)
        np.testing.assert_array_equal(f.arrival_times, r.arrival_times)
        if r.aoi_route is None:
            assert f.aoi_route is None and f.aoi_arrival_times is None
        else:
            np.testing.assert_array_equal(f.aoi_route, r.aoi_route)
            np.testing.assert_array_equal(f.aoi_arrival_times,
                                          r.aoi_arrival_times)


class TestEndToEndConformance:
    @pytest.mark.parametrize("variant", ["full", "two-step", "w/o aoi",
                                         "w/o graph", "w/o uncertainty"])
    def test_variant_sweep(self, variant, sweep_graphs):
        model = M2G4RTP(make_variant(variant, small_config()))
        ref, out = predict_both_backends(model, sweep_graphs)
        assert_outputs_identical(ref, out)

    @pytest.mark.parametrize("cell_type", ["lstm", "gru"])
    def test_cell_types(self, cell_type, sweep_graphs):
        model = M2G4RTP(small_config(cell_type=cell_type))
        ref, out = predict_both_backends(model, sweep_graphs)
        assert_outputs_identical(ref, out)

    def test_restrict_to_neighbors(self, sweep_graphs):
        model = M2G4RTP(small_config(restrict_to_neighbors=True))
        ref, out = predict_both_backends(model, sweep_graphs)
        assert_outputs_identical(ref, out)

    def test_encoder_embeddings_identical(self, sweep_graphs):
        model = M2G4RTP(small_config())
        model.eval()
        batch = GraphBatch.from_graphs(sweep_graphs)
        with no_grad():
            with kernels.backend_scope("reference"):
                loc_ref, aoi_ref = model.encoder.forward_batch(batch)
            with kernels.backend_scope("fused"):
                loc_out, aoi_out = model.encoder.forward_batch(batch)
        np.testing.assert_array_equal(loc_out.data, loc_ref.data)
        np.testing.assert_array_equal(aoi_out.data, aoi_ref.data)

    def test_fused_matches_sequential_predict(self, sweep_graphs):
        """The existing batched-vs-sequential contract holds on fused."""
        model = M2G4RTP(small_config())
        with kernels.backend_scope("fused"):
            batched = BatchedM2G4RTP(model).predict(sweep_graphs)
        for graph, out in zip(sweep_graphs, batched):
            sequential = model.predict(graph)
            np.testing.assert_array_equal(out.route, sequential.route)
            np.testing.assert_allclose(out.arrival_times,
                                       sequential.arrival_times, atol=1e-8)

    def test_single_node_instance_full_model(self, world, builder):
        instance = world.simulate_courier_day(0, 0, num_locations=1,
                                              num_aois=1, seed=77)
        graph = builder.build(instance)
        model = M2G4RTP(small_config())
        ref, out = predict_both_backends(model, [graph])
        assert_outputs_identical(ref, out)
        assert len(out[0].route) == 1


# ----------------------------------------------------------------------
# Seeded fuzz (--runslow)
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestFuzzConformance:
    def test_kernel_level_fuzz(self):
        rng = np.random.default_rng(20230806)
        for trial in range(30):
            batch = int(rng.integers(1, 7))
            n = int(rng.integers(1, 33))
            dim = int(rng.choice([4, 8, 16]))
            heads = 2 if dim % 2 == 0 else 1
            gat = GATEEncoder(dim=dim, num_layers=int(rng.integers(1, 3)),
                              num_heads=heads, rng=rng)
            nodes, edges, adjacency = random_gat_inputs(
                rng, batch, n, dim, mask_rows=int(rng.integers(0, n + 1)))
            with no_grad():
                ref_nodes, _ = reference.gat_encoder_forward(
                    gat, nodes, edges, adjacency)
            fused_nodes, _ = fused.gat_encoder_forward(
                gat, nodes, edges, adjacency)
            np.testing.assert_array_equal(fused_nodes, ref_nodes,
                                          err_msg=f"trial {trial}")

            cell_type = str(rng.choice(["lstm", "gru"]))
            route, sort = build_decoders(rng, node_dim=dim,
                                         cell_type=cell_type)
            dec_nodes = rng.normal(size=(batch, n, dim))
            courier = rng.normal(size=(batch, 4))
            lengths = rng.integers(0, n + 1, size=batch)
            ref_routes = reference.pointer_decode(route, dec_nodes, courier,
                                                  lengths)
            out_routes = fused.pointer_decode(route, dec_nodes, courier,
                                              lengths)
            np.testing.assert_array_equal(out_routes, ref_routes,
                                          err_msg=f"trial {trial}")
            np.testing.assert_array_equal(
                fused.sort_rnn_forward(sort, dec_nodes, out_routes, lengths),
                reference.sort_rnn_forward(sort, dec_nodes, ref_routes,
                                           lengths),
                err_msg=f"trial {trial}")

    def test_model_level_fuzz(self, world, builder):
        rng = np.random.default_rng(42)
        model = M2G4RTP(small_config())
        for trial in range(8):
            sizes = [(int(rng.integers(1, 65)), int(rng.integers(1, 17)))
                     for _ in range(int(rng.integers(1, 5)))]
            graphs = [builder.build(world.simulate_courier_day(
                int(rng.integers(0, 4)), int(rng.integers(0, 6)),
                num_locations=n, num_aois=min(m, n),
                seed=int(rng.integers(0, 2 ** 31))))
                for n, m in sizes]
            ref, out = predict_both_backends(model, graphs)
            assert_outputs_identical(ref, out)
