"""End-to-end determinism: same seed ⇒ bitwise-identical predictions.

Two axes of nondeterminism are certified away:

* **Loader configuration** — ``ParallelDataLoader`` derives each item's
  RNG from ``(seed, index)``, so the number of workers (0 = inline,
  1, 2 = pooled) must not change a single bit of the transformed
  graphs nor of the predictions computed from them.
* **Kernel backend** — the ``fused`` backend is certified bit-identical
  to ``reference`` (see ``tests/test_kernel_conformance.py``), so
  routes and ETAs must not depend on ``kernels.use`` either.

The product of both axes is checked against one golden output.
"""

import numpy as np
import pytest

from repro import kernels
from repro.core import BatchedM2G4RTP, M2G4RTP, M2G4RTPConfig
from repro.parallel import ParallelDataLoader


def small_config(**overrides) -> M2G4RTPConfig:
    base = dict(hidden_dim=16, num_heads=2, num_encoder_layers=1,
                continuous_embed_dim=8, discrete_embed_dim=4,
                position_dim=4, courier_embed_dim=4, seed=5)
    base.update(overrides)
    return M2G4RTPConfig(**base)


@pytest.fixture(scope="module")
def instances(dataset):
    return list(dataset)[:10]


def load_graphs(instances, builder, num_workers):
    loader = ParallelDataLoader(instances, transform=builder.build,
                                batch_size=4, num_workers=num_workers,
                                seed=99)
    graphs = []
    for batch in loader:
        graphs.extend(batch)
    return graphs


def flatten_outputs(outputs):
    parts = []
    for out in outputs:
        parts.append(out.route.astype(np.float64))
        parts.append(out.arrival_times)
        if out.aoi_route is not None:
            parts.append(out.aoi_route.astype(np.float64))
            parts.append(out.aoi_arrival_times)
    return np.concatenate([p.ravel() for p in parts])


class TestLoaderDeterminism:
    @pytest.mark.parametrize("num_workers", [1, 2])
    def test_graphs_identical_across_worker_counts(self, instances, builder,
                                                   num_workers):
        """Graph tensors are bitwise-equal whether built inline or in a
        worker pool of any size."""
        inline = load_graphs(instances, builder, num_workers=0)
        pooled = load_graphs(instances, builder, num_workers=num_workers)
        assert len(inline) == len(pooled) == len(instances)
        for a, b in zip(inline, pooled):
            np.testing.assert_array_equal(a.location.continuous,
                                          b.location.continuous)
            np.testing.assert_array_equal(a.location.edge_features,
                                          b.location.edge_features)
            np.testing.assert_array_equal(a.location.adjacency,
                                          b.location.adjacency)
            np.testing.assert_array_equal(a.aoi.continuous, b.aoi.continuous)
            np.testing.assert_array_equal(a.aoi.adjacency, b.aoi.adjacency)
            np.testing.assert_array_equal(a.aoi_of_location,
                                          b.aoi_of_location)


class TestEndToEndDeterminism:
    def test_predictions_bitwise_identical_across_configs(self, instances,
                                                          builder):
        """The full matrix: loader workers {0, 1, 2} × kernel backends
        {reference, fused} all produce one bitwise-identical answer."""
        model = M2G4RTP(small_config())
        engine = BatchedM2G4RTP(model)
        golden = None
        for num_workers in (0, 1, 2):
            graphs = load_graphs(instances, builder, num_workers=num_workers)
            for backend in ("reference", "fused"):
                with kernels.backend_scope(backend):
                    flat = flatten_outputs(engine.predict(graphs))
                label = f"workers={num_workers} backend={backend}"
                if golden is None:
                    golden = flat
                else:
                    np.testing.assert_array_equal(flat, golden,
                                                  err_msg=label)

    def test_repeated_prediction_is_stable(self, instances, builder):
        """Two runs of the same configuration agree with themselves —
        the fused workspace reuse must not leak state across calls."""
        model = M2G4RTP(small_config())
        engine = BatchedM2G4RTP(model)
        graphs = load_graphs(instances, builder, num_workers=0)
        with kernels.backend_scope("fused"):
            first = flatten_outputs(engine.predict(graphs))
            # Interleave a different-shaped batch to stir the workspace.
            engine.predict(graphs[:3])
            second = flatten_outputs(engine.predict(graphs))
        np.testing.assert_array_equal(first, second)


@pytest.mark.slow
class TestTrainerLoaderDeterminism:
    def test_training_loss_invariant_to_loader_workers(self, instances,
                                                       builder):
        """One training epoch through DataParallelTrainer produces the
        same loss whether graphs are built inline or by loader workers."""
        from repro.data import RTPDataset
        from repro.parallel import DataParallelTrainer, ParallelConfig
        from repro.training import TrainerConfig

        train = RTPDataset(instances[:6])
        losses = {}
        for workers in (0, 2):
            model = M2G4RTP(small_config())
            trainer = DataParallelTrainer(
                model, TrainerConfig(epochs=1, patience=1),
                ParallelConfig(num_workers=1, loader_workers=workers),
                builder=builder)
            history = trainer.fit(train)
            losses[workers] = history.train_loss[-1]
        assert losses[0] == losses[2]
