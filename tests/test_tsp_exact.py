"""Tests for Held-Karp exact TSP and Or-opt local search."""

import numpy as np
import pytest

from repro.baselines import (
    held_karp_path,
    nearest_neighbor_path,
    or_opt,
    path_length,
    two_opt,
)


def random_instance(rng, n):
    coords = rng.random((n, 2)) * 1000
    distance = np.linalg.norm(coords[:, None] - coords[None, :], axis=-1)
    start = rng.random(n) * 1000
    return start, distance


class TestHeldKarp:
    def test_single_node(self):
        path = held_karp_path(np.array([1.0]), np.zeros((1, 1)))
        assert path.tolist() == [0]

    def test_rejects_large_instances(self, rng):
        start, distance = random_instance(rng, 16)
        with pytest.raises(ValueError):
            held_karp_path(start, distance)

    def test_optimal_on_line(self):
        # Points on a line; start cost favours the leftmost point.
        positions = np.array([0.0, 1.0, 2.0, 3.0])
        distance = np.abs(positions[:, None] - positions[None, :])
        start = positions + 0.1
        path = held_karp_path(start, distance)
        assert path.tolist() == [0, 1, 2, 3]

    @pytest.mark.parametrize("n", [4, 6, 8])
    def test_never_worse_than_heuristics(self, n, rng):
        for _ in range(5):
            start, distance = random_instance(rng, n)
            exact = held_karp_path(start, distance)
            heuristic = two_opt(nearest_neighbor_path(start, distance),
                                start, distance)
            assert (path_length(exact, start, distance)
                    <= path_length(heuristic, start, distance) + 1e-9)

    def test_exact_matches_bruteforce_small(self, rng):
        import itertools
        start, distance = random_instance(rng, 6)
        exact = held_karp_path(start, distance)
        best = min(
            (path_length(np.array(perm), start, distance)
             for perm in itertools.permutations(range(6))))
        assert np.isclose(path_length(exact, start, distance), best)


class TestOrOpt:
    def test_never_worse(self, rng):
        for _ in range(5):
            start, distance = random_instance(rng, 9)
            initial = nearest_neighbor_path(start, distance)
            improved = or_opt(initial, start, distance)
            assert (path_length(improved, start, distance)
                    <= path_length(initial, start, distance) + 1e-9)

    def test_output_is_permutation(self, rng):
        start, distance = random_instance(rng, 10)
        improved = or_opt(nearest_neighbor_path(start, distance),
                          start, distance)
        assert sorted(improved.tolist()) == list(range(10))

    def test_fixes_obvious_relocation(self):
        # Line 0-1-2-3 but node 3 wrongly visited first.
        positions = np.array([0.0, 1.0, 2.0, 3.0])
        distance = np.abs(positions[:, None] - positions[None, :])
        start = positions + 0.1
        bad = np.array([3, 0, 1, 2])
        fixed = or_opt(bad, start, distance)
        assert (path_length(fixed, start, distance)
                < path_length(bad, start, distance))


class TestHeuristicOptimalityGap:
    def test_gap_small_at_paper_scale(self, rng):
        """NN + 2-opt + Or-opt stays within a few percent of optimal for
        n <= 12 — the evidence that the OR-Tools substitution is fair."""
        gaps = []
        for _ in range(10):
            start, distance = random_instance(rng, 10)
            heuristic = or_opt(
                two_opt(nearest_neighbor_path(start, distance),
                        start, distance),
                start, distance)
            exact = held_karp_path(start, distance)
            h = path_length(heuristic, start, distance)
            e = path_length(exact, start, distance)
            gaps.append(h / e - 1.0)
        assert np.mean(gaps) < 0.05
        assert max(gaps) < 0.25
