"""Tests for the trainer, early stopping, two-step mode and checkpoints."""

import numpy as np
import pytest

from repro.autodiff import SGD, Adam
from repro.core import M2G4RTP, M2G4RTPConfig, RTPTargets, make_variant
from repro.training import (
    CheckpointError,
    Trainer,
    TrainerConfig,
    load_checkpoint,
    save_checkpoint,
    train_m2g4rtp,
)


def small_model(seed=0, **overrides):
    config = M2G4RTPConfig(hidden_dim=16, num_heads=2, num_encoder_layers=1,
                           seed=seed, **overrides)
    return M2G4RTP(config)


class TestTrainer:
    def test_loss_decreases(self, splits):
        train, _, _ = splits
        model = small_model()
        trainer = Trainer(model, TrainerConfig(epochs=4))
        history = trainer.fit(train[:12])
        assert history.num_epochs == 4
        assert history.train_loss[-1] < history.train_loss[0]

    def test_history_records_sigmas(self, splits):
        train, _, _ = splits
        model = small_model()
        history = Trainer(model, TrainerConfig(epochs=2)).fit(train[:6])
        assert len(history.sigmas) == 2
        assert set(history.sigmas[0]) == {
            "aoi_route", "location_route", "aoi_time", "location_time"}

    def test_early_stopping_restores_best(self, splits):
        train, val, _ = splits
        model = small_model()
        trainer = Trainer(model, TrainerConfig(epochs=30, patience=2))
        history = trainer.fit(train[:10], val[:6])
        assert history.num_epochs <= 30
        assert history.best_epoch >= 0
        # The restored model must reproduce the best validation loss.
        graphs = [trainer.builder.build(i) for i in val[:6]]
        targets = [RTPTargets.from_instance(i) for i in val[:6]]
        restored = trainer.evaluate_loss(graphs, targets)
        assert np.isclose(restored, min(history.val_loss), atol=1e-6)

    def test_model_left_in_eval_mode(self, splits):
        train, _, _ = splits
        model = small_model()
        Trainer(model, TrainerConfig(epochs=1)).fit(train[:4])
        assert not model.training

    def test_two_step_uses_separate_optimizers(self, splits):
        train, _, _ = splits
        model = small_model(detach_time_inputs=True)
        trainer = Trainer(model, TrainerConfig(epochs=2))
        history = trainer.fit(train[:8])
        assert history.num_epochs == 2
        assert np.isfinite(history.train_loss).all()

    def test_convenience_function(self, splits):
        train, val, _ = splits
        model, history = train_m2g4rtp(
            train[:6], val[:4], model=small_model(),
            trainer_config=TrainerConfig(epochs=2))
        assert isinstance(model, M2G4RTP)
        assert history.num_epochs >= 1

    def test_variant_training_smoke(self, splits):
        train, _, _ = splits
        for name in ("w/o aoi", "w/o uncertainty"):
            model = M2G4RTP(make_variant(name, M2G4RTPConfig(
                hidden_dim=16, num_heads=2, num_encoder_layers=1)))
            history = Trainer(model, TrainerConfig(epochs=1)).fit(train[:4])
            assert history.num_epochs == 1


class TestCheckpoint:
    def test_roundtrip(self, splits, tmp_path, graph):
        train, _, _ = splits
        model = small_model()
        Trainer(model, TrainerConfig(epochs=1)).fit(train[:4])
        path = tmp_path / "model.npz"
        save_checkpoint(model, path)

        clone = small_model(seed=42)
        load_checkpoint(clone, path)
        a = model.predict(graph)
        b = clone.predict(graph)
        assert np.array_equal(a.route, b.route)
        assert np.allclose(a.arrival_times, b.arrival_times)

    def test_load_into_wrong_architecture(self, tmp_path):
        model = small_model()
        path = tmp_path / "model.npz"
        save_checkpoint(model, path)
        other = M2G4RTP(M2G4RTPConfig(hidden_dim=24, num_heads=2,
                                      num_encoder_layers=1))
        with pytest.raises((KeyError, ValueError)):
            load_checkpoint(other, path)


def _train_steps(model, optimizer, data, steps):
    """``steps`` deterministic single-instance optimisation steps."""
    model.train()
    for step in range(steps):
        graph, target = data[step % len(data)]
        optimizer.zero_grad()
        output = model(graph, target)
        output.total_loss.backward()
        optimizer.step()


class TestResumeTraining:
    """save/load with ``optimizer=`` must make a resumed run identical
    to an uninterrupted one (satellite of the parallel-training PR)."""

    @pytest.fixture()
    def data(self, splits, builder):
        train, _, _ = splits
        return [(builder.build(instance),
                 RTPTargets.from_instance(instance))
                for instance in train[:4]]

    def test_resume_mid_training_is_identical(self, data, tmp_path):
        model = small_model()
        optimizer = Adam(model.parameters(), lr=1e-3)
        _train_steps(model, optimizer, data, 3)
        path = save_checkpoint(model, tmp_path / "mid.npz", optimizer)
        _train_steps(model, optimizer, data, 3)
        reference = model.state_dict()

        resumed = small_model(seed=7)   # different init: all from ckpt
        resumed_optimizer = Adam(resumed.parameters(), lr=0.5)
        load_checkpoint(resumed, path, optimizer=resumed_optimizer)
        assert resumed_optimizer.lr == optimizer.lr
        _train_steps(resumed, resumed_optimizer, data, 3)
        restored = resumed.state_dict()
        for name in reference:
            assert np.array_equal(reference[name], restored[name]), name

    def test_cold_restart_differs_without_optimizer_state(self, data,
                                                          tmp_path):
        # Control for the test above: restoring the weights but NOT the
        # Adam moments does change the trajectory.
        model = small_model()
        optimizer = Adam(model.parameters(), lr=1e-3)
        _train_steps(model, optimizer, data, 3)
        path = save_checkpoint(model, tmp_path / "mid.npz", optimizer)
        _train_steps(model, optimizer, data, 3)
        reference = model.state_dict()

        cold = small_model(seed=7)
        load_checkpoint(cold, path)     # weights only
        _train_steps(cold, Adam(cold.parameters(), lr=1e-3), data, 3)
        restored = cold.state_dict()
        assert any(not np.array_equal(reference[name], restored[name])
                   for name in reference)

    def test_weights_only_checkpoint_cannot_resume(self, data, tmp_path):
        model = small_model()
        path = save_checkpoint(model, tmp_path / "weights.npz")
        optimizer = Adam(model.parameters())
        with pytest.raises(CheckpointError, match="no optimizer state"):
            load_checkpoint(model, path, optimizer=optimizer)

    def test_optimizer_kind_mismatch_rejected(self, data, tmp_path):
        model = small_model()
        adam = Adam(model.parameters())
        _train_steps(model, adam, data, 1)
        path = save_checkpoint(model, tmp_path / "adam.npz", adam)
        before = model.state_dict()
        sgd = SGD(model.parameters(), lr=0.1)
        with pytest.raises(CheckpointError, match="does not match"):
            load_checkpoint(model, path, optimizer=sgd)
        # Validate-before-apply: the failed load touched nothing.
        after = model.state_dict()
        assert all(np.array_equal(before[name], after[name])
                   for name in before)
